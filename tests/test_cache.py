"""Tests for the generic cache, CPU hierarchy, and metadata cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheHierarchy,
    LevelConfig,
    MetadataCache,
    SetAssociativeCache,
)
from repro.cache.metadata_cache import MetadataCacheStats, MetadataEviction


class TestSetAssociativeCache:
    @pytest.fixture
    def cache(self):
        # 4 sets x 2 ways x 64B = 512B
        return SetAssociativeCache(size_bytes=512, ways=2)

    def test_miss_then_hit(self, cache):
        hit, ev = cache.access(0)
        assert not hit and ev is None
        hit, ev = cache.access(0)
        assert hit

    def test_unaligned_access_maps_to_line(self, cache):
        cache.access(0)
        hit, _ = cache.access(63)
        assert hit

    def test_lru_eviction(self, cache):
        # Addresses 0, 256, 512 share set 0 (4 sets * 64B stride = 256B).
        cache.access(0)
        cache.access(256)
        cache.access(0)      # make 256 the LRU
        hit, ev = cache.access(512)
        assert not hit
        assert ev is not None and ev.address == 256

    def test_dirty_eviction_flagged(self, cache):
        cache.access(0, is_write=True)
        cache.access(256)
        _, ev = cache.access(512)
        assert ev.address == 0 and ev.dirty

    def test_write_hit_sets_dirty(self, cache):
        cache.access(0)
        cache.access(0, is_write=True)
        ev = cache.invalidate(0)
        assert ev.dirty

    def test_payload_stored_and_updated(self, cache):
        cache.access(0, payload="v1")
        assert cache.peek(0) == "v1"
        cache.update_payload(0, "v2")
        assert cache.peek(0) == "v2"
        with pytest.raises(KeyError):
            cache.update_payload(64, "x")

    def test_flush_all(self, cache):
        cache.access(0, is_write=True)
        cache.access(64)
        evs = cache.flush_all()
        assert len(evs) == 2
        assert len(cache) == 0

    def test_stats(self, cache):
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert 0 < cache.stats.miss_rate < 1

    def test_address_roundtrip(self, cache):
        for addr in (0, 64, 256, 1024, 4096):
            s, t = cache.set_index(addr), cache.tag_of(addr)
            assert cache.address_of(s, t) == addr

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, ways=2)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=0, ways=2)

    def test_writebacks_track_dirty_evictions(self, cache):
        """Pinned semantics: ``writebacks`` counts dirty victims pushed
        out on the access path, in lockstep with ``dirty_evictions``
        (regression: the counter used to be dead, never incremented)."""
        cache.access(0, is_write=True)
        cache.access(256)
        cache.access(512)            # evicts dirty 0 -> writeback
        assert cache.stats.writebacks == 1
        assert cache.stats.dirty_evictions == 1
        cache.access(768)            # evicts clean 256 -> no writeback
        assert cache.stats.writebacks == 1
        # Explicit drops (invalidate/flush) hand the dirty line to the
        # caller; they are not counted as this cache's writebacks.
        cache.access(0, is_write=True)
        cache.invalidate(0)
        cache.access(64, is_write=True)
        cache.flush_all()
        assert cache.stats.writebacks == cache.stats.dirty_evictions

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
        max_size=300,
    ))
    def test_property_writebacks_equal_dirty_evictions(self, ops):
        cache = SetAssociativeCache(size_bytes=512, ways=2)
        for block, is_write in ops:
            cache.access(block * 64, is_write=is_write)
        assert cache.stats.writebacks == cache.stats.dirty_evictions

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_property_occupancy_bounded(self, addrs):
        cache = SetAssociativeCache(size_bytes=512, ways=2)
        for a in addrs:
            cache.access(a * 64)
        assert len(cache) <= 8  # 4 sets x 2 ways

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(min_value=0, max_value=31), max_size=100))
    def test_property_recent_line_always_resident(self, addrs):
        cache = SetAssociativeCache(size_bytes=512, ways=2)
        for a in addrs:
            cache.access(a * 64)
            assert cache.contains(a * 64)


class TestCacheHierarchy:
    @pytest.fixture
    def hierarchy(self):
        levels = (
            LevelConfig("L1", 256, 2, 2),
            LevelConfig("L2", 1024, 4, 10),
        )
        return CacheHierarchy(levels=levels)

    def test_first_access_misses_to_memory(self, hierarchy):
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level == "memory"
        assert res.memory_read
        assert res.latency_cycles == 12

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0, is_write=False)
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level == "L1"
        assert res.latency_cycles == 2
        assert not res.memory_read

    def test_l2_hit_promotes_to_l1(self, hierarchy):
        hierarchy.access(0, is_write=False)
        # Evict 0 from tiny L1 (2 sets x 2 ways) with conflicting lines.
        for addr in (128, 256, 384):
            hierarchy.access(addr, is_write=False)
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level in ("L1", "L2")
        res2 = hierarchy.access(0, is_write=False)
        assert res2.hit_level == "L1"

    def test_dirty_llc_eviction_produces_writeback(self):
        levels = (LevelConfig("LLC", 128, 1, 5),)  # 2 sets x 1 way
        h = CacheHierarchy(levels=levels)
        h.access(0, is_write=True)
        res = h.access(128, is_write=False)  # same set, evicts dirty 0
        assert 0 in res.writebacks

    def test_flush_dirty(self, hierarchy):
        hierarchy.access(0, is_write=True)
        dirty = hierarchy.flush_dirty()
        assert 0 in dirty

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=())


class TestMetadataCache:
    @pytest.fixture
    def mcache(self):
        # 2 sets x 2 ways
        return MetadataCache(size_bytes=256, ways=2)

    def test_miss_returns_none_and_counts(self, mcache):
        assert mcache.get(0) is None
        assert mcache.stats.misses == 1

    def test_fill_then_get(self, mcache):
        assert mcache.fill(0, "counter-block") is None
        assert mcache.get(0) == "counter-block"
        assert mcache.stats.hits == 1

    def test_fill_existing_updates_in_place(self, mcache):
        mcache.fill(0, "v1")
        assert mcache.fill(0, "v2", dirty=True) is None
        assert mcache.peek(0) == "v2"
        assert len(mcache) == 1

    def test_eviction_on_conflict(self, mcache):
        # Set stride: 2 sets -> addresses 0 and 128 share set 0.
        mcache.fill(0, "a")
        mcache.fill(128, "b")
        ev = mcache.fill(256, "c")
        assert ev is not None
        assert ev.address == 0  # LRU
        assert ev.payload == "a"
        assert ev.set_index == 0

    def test_lru_respects_get_touch(self, mcache):
        mcache.fill(0, "a")
        mcache.fill(128, "b")
        mcache.get(0)  # touch
        ev = mcache.fill(256, "c")
        assert ev.address == 128

    def test_dirty_tracking(self, mcache):
        mcache.fill(0, "a")
        mcache.mark_dirty(0)
        mcache.fill(128, "b")
        ev = mcache.fill(256, "c")
        assert ev.dirty
        assert mcache.stats.dirty_evictions == 1
        with pytest.raises(KeyError):
            mcache.mark_dirty(999 * 64)

    def test_slot_identity_stable(self, mcache):
        mcache.fill(0, "a")
        loc1 = mcache.location_of(0)
        mcache.get(0)
        mcache.fill(128, "b")
        assert mcache.location_of(0) == loc1
        assert mcache.slot_id(*loc1) == loc1[0] * 2 + loc1[1]

    def test_invalidate(self, mcache):
        mcache.fill(0, "a", dirty=True)
        rec = mcache.invalidate(0)
        assert rec.dirty and rec.payload == "a"
        assert mcache.invalidate(0) is None
        assert len(mcache) == 0

    def test_flush_all_returns_everything(self, mcache):
        mcache.fill(0, "a", dirty=True)
        mcache.fill(64, "b")
        records = mcache.flush_all()
        assert len(records) == 2
        assert len(mcache) == 0

    def test_resident_listing(self, mcache):
        mcache.fill(64, "b")
        mcache.fill(0, "a", dirty=True)
        assert mcache.resident() == [(0, "a", True), (64, "b", False)]

    def test_alignment_enforced(self, mcache):
        with pytest.raises(ValueError):
            mcache.fill(3, "x")

    def test_num_slots(self, mcache):
        assert mcache.num_slots == 4

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
        max_size=200,
    ))
    def test_property_fill_makes_resident(self, ops):
        mcache = MetadataCache(size_bytes=256, ways=2)
        for block, dirty in ops:
            addr = block * 64
            mcache.fill(addr, block, dirty=dirty)
            assert mcache.contains(addr)
            assert len(mcache) <= 4


class _LinearScanMetadataCache:
    """Reference implementation: the pre-dict-index linear-scan cache.

    Anubis' shadow table mirrors the metadata cache's (set, way) slots
    one-to-one, so the dict-backed rewrite must assign slots, choose
    LRU victims, and emit eviction records *identically* to this code
    on any access sequence.
    """

    class _Slot:
        __slots__ = ("address", "payload", "dirty", "stamp")

        def __init__(self):
            self.address = None
            self.payload = None
            self.dirty = False
            self.stamp = 0

    def __init__(self, size_bytes, ways, line_size=64):
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self._sets = [
            [self._Slot() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.stats = MetadataCacheStats()

    def set_index(self, address):
        return (address // self.line_size) % self.num_sets

    def _find(self, address):
        set_idx = self.set_index(address)
        for way, slot in enumerate(self._sets[set_idx]):
            if slot.address == address:
                return set_idx, way, slot
        return set_idx, None, None

    def get(self, address):
        self._clock += 1
        __, __, slot = self._find(address)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        slot.stamp = self._clock
        return slot.payload

    def location_of(self, address):
        set_idx, way, slot = self._find(address)
        return (set_idx, way) if slot is not None else None

    def fill(self, address, payload, dirty=False):
        self._clock += 1
        set_idx, way, slot = self._find(address)
        if slot is not None:
            slot.payload = payload
            slot.dirty = slot.dirty or dirty
            slot.stamp = self._clock
            return None
        slots = self._sets[set_idx]
        victim_way, victim = None, None
        for w, s in enumerate(slots):
            if s.address is None:
                victim_way, victim = w, s
                break
        eviction = None
        if victim is None:
            victim_way, victim = min(
                enumerate(slots), key=lambda pair: pair[1].stamp
            )
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            eviction = MetadataEviction(
                address=victim.address,
                payload=victim.payload,
                dirty=victim.dirty,
                set_index=set_idx,
                way=victim_way,
            )
        victim.address = address
        victim.payload = payload
        victim.dirty = dirty
        victim.stamp = self._clock
        return eviction

    def mark_dirty(self, address):
        self._find(address)[2].dirty = True

    def mark_clean(self, address):
        self._find(address)[2].dirty = False

    def invalidate(self, address):
        set_idx, way, slot = self._find(address)
        if slot is None:
            return None
        record = MetadataEviction(
            address=slot.address, payload=slot.payload, dirty=slot.dirty,
            set_index=set_idx, way=way,
        )
        slot.address = None
        slot.payload = None
        slot.dirty = False
        slot.stamp = 0
        return record

    def resident(self):
        out = []
        for slots in self._sets:
            out.extend(
                (s.address, s.payload, s.dirty)
                for s in slots if s.address is not None
            )
        return sorted(out, key=lambda t: t[0])


class TestMetadataCacheSlotStability:
    """Property: the dict-backed cache is observationally identical to
    the linear-scan reference on randomized traces — (set, way)/slot_id
    assignments, LRU victim choice, eviction records, and stats."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("ways,size", [(2, 256), (4, 1024), (8, 4096)])
    def test_randomized_trace_equivalence(self, seed, ways, size):
        rng = np.random.default_rng(seed)
        fast = MetadataCache(size_bytes=size, ways=ways)
        reference = _LinearScanMetadataCache(size, ways)
        # More distinct blocks than slots so evictions are frequent.
        num_blocks = 4 * fast.num_slots
        resident = set()
        for step in range(3000):
            address = int(rng.integers(0, num_blocks)) * 64
            op = rng.random()
            if op < 0.45:
                assert fast.get(address) == reference.get(address)
            elif op < 0.85:
                dirty = bool(rng.random() < 0.5)
                got = fast.fill(address, step, dirty=dirty)
                want = reference.fill(address, step, dirty=dirty)
                assert got == want  # same victim slot, payload, dirty bit
                if want is not None:
                    resident.discard(want.address)
                resident.add(address)
            elif op < 0.9 and resident:
                target = min(resident)
                fast.mark_dirty(target)
                reference.mark_dirty(target)
            elif op < 0.95:
                got = fast.invalidate(address)
                want = reference.invalidate(address)
                assert got == want
                resident.discard(address)
            else:
                assert fast.location_of(address) == reference.location_of(
                    address
                )
            # The shadow table's view: every resident block occupies the
            # exact same (set, way) slot in both implementations.
            for target in resident:
                location = fast.location_of(target)
                assert location == reference.location_of(target)
                assert fast.slot_id(*location) == (
                    location[0] * ways + location[1]
                )
        assert fast.resident() == reference.resident()
        assert fast.stats == reference.stats
        assert len(fast) == len(resident)

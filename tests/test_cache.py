"""Tests for the generic cache, CPU hierarchy, and metadata cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheHierarchy,
    LevelConfig,
    MetadataCache,
    SetAssociativeCache,
)


class TestSetAssociativeCache:
    @pytest.fixture
    def cache(self):
        # 4 sets x 2 ways x 64B = 512B
        return SetAssociativeCache(size_bytes=512, ways=2)

    def test_miss_then_hit(self, cache):
        hit, ev = cache.access(0)
        assert not hit and ev is None
        hit, ev = cache.access(0)
        assert hit

    def test_unaligned_access_maps_to_line(self, cache):
        cache.access(0)
        hit, _ = cache.access(63)
        assert hit

    def test_lru_eviction(self, cache):
        # Addresses 0, 256, 512 share set 0 (4 sets * 64B stride = 256B).
        cache.access(0)
        cache.access(256)
        cache.access(0)      # make 256 the LRU
        hit, ev = cache.access(512)
        assert not hit
        assert ev is not None and ev.address == 256

    def test_dirty_eviction_flagged(self, cache):
        cache.access(0, is_write=True)
        cache.access(256)
        _, ev = cache.access(512)
        assert ev.address == 0 and ev.dirty

    def test_write_hit_sets_dirty(self, cache):
        cache.access(0)
        cache.access(0, is_write=True)
        ev = cache.invalidate(0)
        assert ev.dirty

    def test_payload_stored_and_updated(self, cache):
        cache.access(0, payload="v1")
        assert cache.peek(0) == "v1"
        cache.update_payload(0, "v2")
        assert cache.peek(0) == "v2"
        with pytest.raises(KeyError):
            cache.update_payload(64, "x")

    def test_flush_all(self, cache):
        cache.access(0, is_write=True)
        cache.access(64)
        evs = cache.flush_all()
        assert len(evs) == 2
        assert len(cache) == 0

    def test_stats(self, cache):
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert 0 < cache.stats.miss_rate < 1

    def test_address_roundtrip(self, cache):
        for addr in (0, 64, 256, 1024, 4096):
            s, t = cache.set_index(addr), cache.tag_of(addr)
            assert cache.address_of(s, t) == addr

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, ways=2)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=0, ways=2)

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_property_occupancy_bounded(self, addrs):
        cache = SetAssociativeCache(size_bytes=512, ways=2)
        for a in addrs:
            cache.access(a * 64)
        assert len(cache) <= 8  # 4 sets x 2 ways

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(min_value=0, max_value=31), max_size=100))
    def test_property_recent_line_always_resident(self, addrs):
        cache = SetAssociativeCache(size_bytes=512, ways=2)
        for a in addrs:
            cache.access(a * 64)
            assert cache.contains(a * 64)


class TestCacheHierarchy:
    @pytest.fixture
    def hierarchy(self):
        levels = (
            LevelConfig("L1", 256, 2, 2),
            LevelConfig("L2", 1024, 4, 10),
        )
        return CacheHierarchy(levels=levels)

    def test_first_access_misses_to_memory(self, hierarchy):
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level == "memory"
        assert res.memory_read
        assert res.latency_cycles == 12

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0, is_write=False)
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level == "L1"
        assert res.latency_cycles == 2
        assert not res.memory_read

    def test_l2_hit_promotes_to_l1(self, hierarchy):
        hierarchy.access(0, is_write=False)
        # Evict 0 from tiny L1 (2 sets x 2 ways) with conflicting lines.
        for addr in (128, 256, 384):
            hierarchy.access(addr, is_write=False)
        res = hierarchy.access(0, is_write=False)
        assert res.hit_level in ("L1", "L2")
        res2 = hierarchy.access(0, is_write=False)
        assert res2.hit_level == "L1"

    def test_dirty_llc_eviction_produces_writeback(self):
        levels = (LevelConfig("LLC", 128, 1, 5),)  # 2 sets x 1 way
        h = CacheHierarchy(levels=levels)
        h.access(0, is_write=True)
        res = h.access(128, is_write=False)  # same set, evicts dirty 0
        assert 0 in res.writebacks

    def test_flush_dirty(self, hierarchy):
        hierarchy.access(0, is_write=True)
        dirty = hierarchy.flush_dirty()
        assert 0 in dirty

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=())


class TestMetadataCache:
    @pytest.fixture
    def mcache(self):
        # 2 sets x 2 ways
        return MetadataCache(size_bytes=256, ways=2)

    def test_miss_returns_none_and_counts(self, mcache):
        assert mcache.get(0) is None
        assert mcache.stats.misses == 1

    def test_fill_then_get(self, mcache):
        assert mcache.fill(0, "counter-block") is None
        assert mcache.get(0) == "counter-block"
        assert mcache.stats.hits == 1

    def test_fill_existing_updates_in_place(self, mcache):
        mcache.fill(0, "v1")
        assert mcache.fill(0, "v2", dirty=True) is None
        assert mcache.peek(0) == "v2"
        assert len(mcache) == 1

    def test_eviction_on_conflict(self, mcache):
        # Set stride: 2 sets -> addresses 0 and 128 share set 0.
        mcache.fill(0, "a")
        mcache.fill(128, "b")
        ev = mcache.fill(256, "c")
        assert ev is not None
        assert ev.address == 0  # LRU
        assert ev.payload == "a"
        assert ev.set_index == 0

    def test_lru_respects_get_touch(self, mcache):
        mcache.fill(0, "a")
        mcache.fill(128, "b")
        mcache.get(0)  # touch
        ev = mcache.fill(256, "c")
        assert ev.address == 128

    def test_dirty_tracking(self, mcache):
        mcache.fill(0, "a")
        mcache.mark_dirty(0)
        mcache.fill(128, "b")
        ev = mcache.fill(256, "c")
        assert ev.dirty
        assert mcache.stats.dirty_evictions == 1
        with pytest.raises(KeyError):
            mcache.mark_dirty(999 * 64)

    def test_slot_identity_stable(self, mcache):
        mcache.fill(0, "a")
        loc1 = mcache.location_of(0)
        mcache.get(0)
        mcache.fill(128, "b")
        assert mcache.location_of(0) == loc1
        assert mcache.slot_id(*loc1) == loc1[0] * 2 + loc1[1]

    def test_invalidate(self, mcache):
        mcache.fill(0, "a", dirty=True)
        rec = mcache.invalidate(0)
        assert rec.dirty and rec.payload == "a"
        assert mcache.invalidate(0) is None
        assert len(mcache) == 0

    def test_flush_all_returns_everything(self, mcache):
        mcache.fill(0, "a", dirty=True)
        mcache.fill(64, "b")
        records = mcache.flush_all()
        assert len(records) == 2
        assert len(mcache) == 0

    def test_resident_listing(self, mcache):
        mcache.fill(64, "b")
        mcache.fill(0, "a", dirty=True)
        assert mcache.resident() == [(0, "a", True), (64, "b", False)]

    def test_alignment_enforced(self, mcache):
        with pytest.raises(ValueError):
            mcache.fill(3, "x")

    def test_num_slots(self, mcache):
        assert mcache.num_slots == 4

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
        max_size=200,
    ))
    def test_property_fill_makes_resident(self, ops):
        mcache = MetadataCache(size_bytes=256, ways=2)
        for block, dirty in ops:
            addr = block * 64
            mcache.fill(addr, block, dirty=dirty)
            assert mcache.contains(addr)
            assert len(mcache) <= 4

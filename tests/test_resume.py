"""Integration tests for the preemption-tolerant sweep runtime:
checkpoint/resume determinism (including oracle-verified cells),
graceful signal draining, hung-worker watchdog, crashed-worker
recovery, and the --max-failures circuit breaker."""

import json
import os
import signal
import time
from dataclasses import asdict

import pytest

from repro.faults import CampaignConfig, run_campaign
from repro.runtime import (
    CheckpointJournal,
    CheckpointMismatchError,
    SimulatedCrashError,
    TooManyFailuresError,
)
from repro.sim import SimCell, SweepEngine, SystemConfig, sweep_report

GCC = ("gcc", (), {"footprint_bytes": 1 << 20, "num_refs": 800})


def _sim_cells(verify=False, seed=7, schemes=("baseline", "src")):
    config = SystemConfig.scaled(16)
    return [
        SimCell(workload=GCC, scheme=scheme, config=config, seed=seed,
                verify=verify)
        for scheme in schemes
    ]


# ---- module-level runners (must cross process boundaries) ----

def _square(cell):
    return cell * cell


def _slow_square(cell):
    time.sleep(0.05)
    return cell * cell


def _always_fail(cell):
    raise ValueError(f"cell {cell} is doomed")


def _hang_until_flag(cell):
    value, flagdir = cell
    flag = os.path.join(flagdir, f"ran-{value}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(30)          # "hung": far beyond any test timeout
    return value * 7


def _exit_once(cell):
    value, flagdir = cell
    flag = os.path.join(flagdir, f"crashed-{value}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(13)            # simulated OOM-kill / segfault
    return value + 100


def _fail_once(cell):
    value, flagdir = cell
    flag = os.path.join(flagdir, f"tried-{value}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        raise RuntimeError(f"transient failure on {value}")
    return value * 3


def _crashing_journal(directory, fail_after):
    """Engine checkpoint factory that dies mid-append after N appends
    (the header append counts)."""
    def factory(fingerprint, total_cells):
        return CheckpointJournal(
            directory, fingerprint=fingerprint, total_cells=total_cells,
            resume=True, fail_after_appends=fail_after,
        )
    return factory


class TestResumeDeterminism:
    """ISSUE acceptance: a sweep killed mid-flight and resumed merges
    to results bit-identical to an uninterrupted run."""

    def test_serial_crash_point_resume_bit_identical(self, tmp_path):
        cells = [0, 1, 2, 3, 4]
        clean_engine = SweepEngine(cells, runner=_square, jobs=1)
        clean = clean_engine.run()

        ckpt = str(tmp_path / "ckpt")
        # Crash after header + 2 journaled cells.
        engine = SweepEngine(cells, runner=_square, jobs=1,
                             checkpoint=_crashing_journal(ckpt, 3))
        with pytest.raises(SimulatedCrashError):
            engine.run()

        resumed_engine = SweepEngine(cells, runner=_square, jobs=1,
                                     checkpoint=ckpt, resume=True)
        resumed = resumed_engine.run()
        assert resumed_engine.resumed_count == 2
        assert [o.result for o in resumed] == [o.result for o in clean]
        assert [o.ok for o in resumed] == [True] * 5
        assert sum(o.resumed for o in resumed) == 2
        # The merged sweep/v1 results are bit-identical JSON.
        clean_json = json.dumps(
            sweep_report(clean_engine, clean)["results"], sort_keys=True)
        resumed_json = json.dumps(
            sweep_report(resumed_engine, resumed)["results"], sort_keys=True)
        assert clean_json == resumed_json

    @pytest.mark.parametrize("fail_after", [2, 4])
    def test_parallel_crash_points_resume_bit_identical(
            self, tmp_path, fail_after):
        cells = list(range(8))
        clean = SweepEngine(cells, runner=_square, jobs=1).run()

        ckpt = str(tmp_path / "ckpt")
        engine = SweepEngine(cells, runner=_square, jobs=4,
                             checkpoint=_crashing_journal(ckpt, fail_after))
        with pytest.raises(SimulatedCrashError):
            engine.run()

        resumed_engine = SweepEngine(cells, runner=_square, jobs=4,
                                     checkpoint=ckpt, resume=True)
        resumed = resumed_engine.run()
        assert resumed_engine.resumed_count == fail_after - 1
        assert [o.result for o in resumed] == [o.result for o in clean]
        assert [o.index for o in resumed] == list(range(8))

    def test_sim_cells_with_oracle_resume_bit_identical(self, tmp_path):
        """Resume composes with verify= sessions: the restored outcomes
        carry the embedded oracle report, bit-equal to a clean run."""
        cells = _sim_cells(verify=True)
        clean = SweepEngine(cells, jobs=1).run()
        assert all(o.result.verify["ok"] for o in clean)

        ckpt = str(tmp_path / "ckpt")
        engine = SweepEngine(cells, jobs=1,
                             checkpoint=_crashing_journal(ckpt, 2))
        with pytest.raises(SimulatedCrashError):
            engine.run()

        resumed = SweepEngine(cells, jobs=1, checkpoint=ckpt,
                              resume=True).run()
        assert [asdict(o.result) for o in resumed] == [
            asdict(o.result) for o in clean
        ]
        assert resumed[0].resumed and not resumed[1].resumed

    def test_resume_reruns_previously_failed_cells(self, tmp_path):
        """Failures are not journaled: a resume retries them instead of
        replaying the failure."""
        flags = str(tmp_path / "flags")
        os.makedirs(flags)
        cells = [(i, flags) for i in range(3)]
        ckpt = str(tmp_path / "ckpt")
        first = SweepEngine(cells, runner=_fail_once, jobs=1, retries=0,
                            checkpoint=ckpt).run()
        assert [o.ok for o in first] == [False] * 3

        resumed = SweepEngine(cells, runner=_fail_once, jobs=1, retries=0,
                              checkpoint=ckpt, resume=True).run()
        assert [o.result for o in resumed] == [0, 3, 6]
        assert all(not o.resumed for o in resumed)

    def test_resume_with_different_grid_refuses(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        SweepEngine([1, 2, 3], runner=_square, jobs=1,
                    checkpoint=ckpt).run()
        with pytest.raises(CheckpointMismatchError):
            SweepEngine([1, 2, 4], runner=_square, jobs=1,
                        checkpoint=ckpt, resume=True).run()

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            SweepEngine([1], runner=_square, resume=True).run()

    def test_resumed_cells_report_unknown_eta_not_zero(self, tmp_path):
        """ETA honesty: restored cells complete instantly, so using
        them as a rate basis would report a bogus near-zero ETA for
        the real work remaining.  While only resumed cells have
        completed the ETA must be None (unknown); once a fresh cell
        lands it becomes a number; when the sweep is done it is 0."""
        cells = [0, 1, 2, 3]
        # Crash after the header + 2 journaled cells, leaving a
        # partial journal to resume from.
        partial = str(tmp_path / "partial")
        engine = SweepEngine(
            cells, runner=_square, jobs=1,
            checkpoint=_crashing_journal(partial, fail_after=3),
        )
        with pytest.raises(SimulatedCrashError):
            engine.run()

        seen = []
        resumed = SweepEngine(cells, runner=_square, jobs=1,
                              checkpoint=partial, resume=True,
                              progress=seen.append).run()
        assert [o.result for o in resumed] == [0, 1, 4, 9]
        restored = [p for p in seen if p.resumed]
        fresh = [p for p in seen if not p.resumed]
        assert len(restored) == 2 and len(fresh) == 2
        # No observed rate while only restored cells have landed.
        assert all(p.eta_seconds is None for p in restored)
        # Fresh completions establish a rate; the final report is 0.
        assert all(p.eta_seconds is not None for p in fresh)
        assert fresh[-1].eta_seconds == 0

    def test_runtime_counters_track_resume(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        SweepEngine([1, 2], runner=_square, jobs=1, checkpoint=ckpt).run()
        engine = SweepEngine([1, 2], runner=_square, jobs=1,
                             checkpoint=ckpt, resume=True)
        engine.run()
        snapshot = engine.registry.snapshot()
        assert snapshot["runtime.cells_resumed"] == 2
        assert snapshot["runtime.cells_completed"] == 0
        assert snapshot["runtime.retries"] == 0


class TestGracefulShutdown:
    def test_sigterm_drains_and_salvages_serial(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        cells = [0, 1, 2, 3]

        def interrupt_once(progress):
            if progress.done == 1:
                signal.raise_signal(signal.SIGTERM)

        engine = SweepEngine(cells, runner=_slow_square, jobs=1,
                             progress=interrupt_once, checkpoint=ckpt)
        outcomes = engine.run()
        assert engine.interrupted
        assert engine.signal_name == "SIGTERM"
        assert outcomes[0].ok
        assert [o.failure_class for o in outcomes[1:]] == ["interrupted"] * 3
        assert "SIGTERM" in outcomes[1].error

        # The partial sweep/v1 report is marked and salvage-counted.
        report = sweep_report(engine, outcomes)
        assert report["interrupted"] is True
        assert report["salvage"] == {
            "total": 4, "completed": 1, "resumed": 0, "reused": 0,
            "failed": 0, "interrupted": 3,
        }

        # Resume converges to the uninterrupted result.
        resumed_engine = SweepEngine(cells, runner=_slow_square, jobs=1,
                                     checkpoint=ckpt, resume=True)
        resumed = resumed_engine.run()
        assert not resumed_engine.interrupted
        assert [o.result for o in resumed] == [0, 1, 4, 9]
        clean_engine = SweepEngine(cells, runner=_slow_square, jobs=1)
        clean = clean_engine.run()
        assert json.dumps(sweep_report(resumed_engine, resumed)["results"],
                          sort_keys=True) == \
            json.dumps(sweep_report(clean_engine, clean)["results"],
                       sort_keys=True)

    def test_sigterm_drains_in_flight_parallel(self):
        cells = list(range(6))
        fired = []

        def interrupt_once(progress):
            if not fired:
                fired.append(True)
                signal.raise_signal(signal.SIGTERM)

        engine = SweepEngine(cells, runner=_slow_square, jobs=2,
                             progress=interrupt_once)
        outcomes = engine.run()
        assert engine.interrupted
        done = [o for o in outcomes if o.ok]
        cut = [o for o in outcomes if o.failure_class == "interrupted"]
        assert len(done) + len(cut) == 6
        assert len(done) >= 1          # the signaled cell itself
        assert len(cut) >= 1           # the queue was drained, not run
        for outcome in done:           # drained results are real results
            assert outcome.result == outcome.index ** 2

    def test_second_signal_hard_stops(self):
        def interrupt_twice(progress):
            signal.raise_signal(signal.SIGTERM)
            signal.raise_signal(signal.SIGTERM)

        engine = SweepEngine([0, 1, 2], runner=_slow_square, jobs=1,
                             progress=interrupt_twice)
        with pytest.raises(KeyboardInterrupt):
            engine.run()

    def test_no_signal_no_interruption(self):
        engine = SweepEngine([1, 2], runner=_square, jobs=1)
        outcomes = engine.run()
        assert not engine.interrupted
        assert all(o.ok for o in outcomes)


class TestWorkerSupervision:
    def test_watchdog_kills_and_replaces_hung_worker(self, tmp_path):
        """ISSUE acceptance: hung-worker injection triggers
        kill + replace + retry, classified in the report."""
        flags = str(tmp_path)
        engine = SweepEngine([(5, flags)], runner=_hang_until_flag, jobs=2,
                             timeout=1.0, retries=1)
        outcomes = engine.run()
        assert outcomes[0].ok
        assert outcomes[0].result == 35
        assert outcomes[0].attempts == 2
        history = outcomes[0].attempt_history
        assert [h["failure_class"] for h in history] == ["timeout"]
        assert "timeout after 1.0s" in history[0]["error"]
        snapshot = engine.registry.snapshot()
        assert snapshot["runtime.worker_restarts"] >= 1
        assert snapshot["runtime.retries"] == 1

    def test_hung_worker_exhausts_timeout_budget(self, tmp_path):
        """A cell that hangs on every attempt degrades to a classified
        timeout failure instead of wedging the sweep."""
        engine = SweepEngine([1], runner=_hang_forever, jobs=2,
                             timeout=0.5, retries=0)
        outcomes = engine.run()
        assert not outcomes[0].ok
        assert outcomes[0].failure_class == "timeout"
        assert "timeout" in outcomes[0].error

    def test_innocent_bystanders_survive_watchdog(self, tmp_path):
        """Killing the pool to evict a hung cell must not fail the
        cells that were merely sharing it."""
        flags = str(tmp_path)
        cells = [(1, flags), (2, flags), (3, flags), (4, flags)]
        engine = SweepEngine(cells, runner=_hang_value_three, jobs=2,
                             timeout=1.0, retries=1)
        outcomes = engine.run()
        assert [o.ok for o in outcomes] == [True] * 4
        assert [o.result for o in outcomes] == [10, 20, 30, 40]

    def test_crashed_worker_is_replaced_and_cell_retried(self, tmp_path):
        """ISSUE acceptance: a simulated worker crash (os._exit) is
        survived — the pool is replaced and the cell re-run."""
        flags = str(tmp_path)
        engine = SweepEngine([(7, flags)], runner=_exit_once, jobs=2,
                             retries=2)
        outcomes = engine.run()
        assert outcomes[0].ok
        assert outcomes[0].result == 107
        assert engine.registry.snapshot()["runtime.worker_restarts"] >= 1

    def test_crash_alongside_healthy_cells(self, tmp_path):
        flags = str(tmp_path)
        cells = [(i, flags) for i in range(4)]
        engine = SweepEngine(cells, runner=_exit_value_two, jobs=2,
                             retries=2)
        outcomes = engine.run()
        assert [o.ok for o in outcomes] == [True] * 4
        assert [o.result for o in outcomes] == [0, 1, 2, 3]


def _hang_forever(cell):
    time.sleep(30)
    return cell


def _hang_value_three(cell):
    value, flagdir = cell
    if value == 3:
        _hang_until_flag((value, flagdir))   # hangs once, instant on retry
    return value * 10


def _exit_value_two(cell):
    value, flagdir = cell
    if value == 2:
        flag = os.path.join(flagdir, "crashed-2")
        if not os.path.exists(flag):
            open(flag, "w").close()
            os._exit(13)
    return value


class TestCircuitBreaker:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_max_failures_stops_early(self, jobs):
        engine = SweepEngine(list(range(10)), runner=_always_fail,
                             jobs=jobs, retries=0, max_failures=3)
        with pytest.raises(TooManyFailuresError) as excinfo:
            engine.run()
        assert excinfo.value.limit == 3
        assert len(excinfo.value.failures) == 3
        assert "retryable=3" in str(excinfo.value)

    def test_max_failures_validation(self):
        with pytest.raises(ValueError):
            SweepEngine([1], max_failures=0)

    def test_under_the_limit_completes(self):
        engine = SweepEngine([0, 1], runner=_square, jobs=1,
                             max_failures=1)
        outcomes = engine.run()
        assert all(o.ok for o in outcomes)


class TestCampaignResilience:
    def _config(self):
        return CampaignConfig(
            data_bytes=16 * 1024, ops=150, num_faults=2,
            schemes=("baseline", "src"), targets=("counter",),
            scrub_intervals=(0,), seed=11,
        )

    def test_campaign_checkpoint_resume_identical(self, tmp_path):
        config = self._config()
        clean = run_campaign(config, jobs=1)
        ckpt = str(tmp_path / "ckpt")
        first = run_campaign(config, jobs=1, checkpoint=ckpt)
        resumed = run_campaign(config, jobs=1, checkpoint=ckpt, resume=True)
        assert resumed.salvage["resumed"] == 2
        assert resumed.runs == clean.runs == first.runs
        assert resumed.schemes == clean.schemes
        assert not resumed.interrupted

    def test_campaign_report_carries_salvage_and_runtime(self):
        report = run_campaign(self._config(), jobs=1)
        payload = report.to_dict()
        assert payload["interrupted"] is False
        assert payload["salvage"]["completed"] == 2
        assert payload["runtime"]["runtime.cells_completed"] == 2

    def test_interrupted_campaign_returns_partial_report(self, tmp_path):
        config = CampaignConfig(
            data_bytes=16 * 1024, ops=150, num_faults=2,
            schemes=("baseline", "src"), targets=("counter",),
            scrub_intervals=(0, 50), seed=11,
        )

        def interrupt_once(progress):
            if progress.done == 1:
                signal.raise_signal(signal.SIGTERM)

        ckpt = str(tmp_path / "ckpt")
        report = run_campaign(config, jobs=1, progress=interrupt_once,
                              checkpoint=ckpt)
        assert report.interrupted
        assert report.salvage["completed"] == 1
        assert report.salvage["interrupted"] == 3
        assert len(report.runs) == 1

        # Resuming converges to the uninterrupted report.
        clean = run_campaign(config, jobs=1)
        resumed = run_campaign(config, jobs=1, checkpoint=ckpt, resume=True)
        assert not resumed.interrupted
        assert resumed.runs == clean.runs
        assert resumed.schemes == clean.schemes
        assert resumed.resilience == clean.resilience

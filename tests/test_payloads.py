"""Unit tests for metadata-cache payload wrappers and WPQ atomicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.payloads import CounterEntry, MacBlockEntry, NodeEntry
from repro.counters import SplitCounterBlock, TocNode
from repro.memory import NvmDevice, WritePendingQueue


class TestCounterEntry:
    def test_kind(self):
        assert CounterEntry(SplitCounterBlock()).kind == "counter"

    def test_slot_update_tracking(self):
        entry = CounterEntry(SplitCounterBlock())
        assert entry.bump_slot(3) == 1
        assert entry.bump_slot(3) == 2
        assert entry.bump_slot(5) == 1
        entry.reset_updates()
        assert entry.slot_updates == [0] * 64

    def test_independent_update_lists(self):
        a = CounterEntry(SplitCounterBlock())
        b = CounterEntry(SplitCounterBlock())
        a.bump_slot(0)
        assert b.slot_updates[0] == 0


class TestNodeEntry:
    def test_kind_and_level(self):
        entry = NodeEntry(TocNode(), level=3)
        assert entry.kind == "node"
        assert entry.level == 3


class TestMacBlockEntry:
    def test_kind(self):
        assert MacBlockEntry().kind == "mac"

    def test_serialization_roundtrip(self):
        entry = MacBlockEntry(macs=[bytes([i]) * 8 for i in range(8)])
        assert MacBlockEntry.from_bytes(entry.to_bytes()).macs == entry.macs

    def test_from_bytes_validates(self):
        with pytest.raises(ValueError):
            MacBlockEntry.from_bytes(b"short")

    def test_default_is_zero_macs(self):
        entry = MacBlockEntry()
        assert entry.to_bytes() == bytes(64)


class TestWpqAtomicityProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        groups=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=63),
                    st.integers(min_value=0, max_value=255),
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_atomic_groups_apply_in_order(self, groups):
        """After any sequence of atomic groups (with forced drains in
        between), the NVM state is the last-writer-wins fold of all
        groups in submission order."""
        nvm = NvmDevice(capacity_bytes=64 * 64)
        wpq = WritePendingQueue(nvm, capacity=8)
        expected = {}
        for group in groups:
            entries = []
            for block, value in group:
                address = block * 64
                data = bytes([value]) * 64
                entries.append((address, data))
            wpq.enqueue_atomic(entries)
            for address, data in entries:
                expected[address] = data
        wpq.drain_all()
        for address, data in expected.items():
            assert nvm.read_block(address) == data

    @settings(max_examples=30, deadline=None)
    @given(
        pending=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63),
                      st.integers(min_value=0, max_value=255)),
            max_size=12,
        )
    )
    def test_property_lookup_sees_latest_pending(self, pending):
        nvm = NvmDevice(capacity_bytes=64 * 64)
        wpq = WritePendingQueue(nvm, capacity=8)
        latest = {}
        for block, value in pending:
            address = block * 64
            data = bytes([value]) * 64
            wpq.enqueue(address, data)
            latest[address] = data
        for address, data in latest.items():
            # Either still pending (forwarded) or already drained.
            visible = wpq.lookup(address) or nvm.read_block(address)
            assert visible == data

"""Tests for the preemption-tolerant runtime primitives
(:mod:`repro.runtime`): crash-safe atomic writes, the checkpoint/v1
journal, the failure taxonomy, and the retry/backoff policy."""

import json
import os
import signal

import numpy as np
import pytest

from repro.runtime import (
    CheckpointJournal,
    CheckpointMismatchError,
    FatalCellError,
    RetryPolicy,
    SignalDrain,
    SimulatedCrashError,
    TooManyFailuresError,
    atomic_write_json,
    atomic_write_text,
    cell_key,
    classify_failure,
    set_failpoint,
    sweep_fingerprint,
)
from repro.sim import CellOutcome, SimCell, SystemConfig


@pytest.fixture(autouse=True)
def _clear_failpoint():
    yield
    set_failpoint(None)


class TestAtomicWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        assert json.loads(path.read_text()) == {"a": 1, "b": 2}
        # Sorted keys: the byte stream is a pure function of the payload.
        assert path.read_text().index('"a"') < path.read_text().index('"b"')

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "fig.csv"
        atomic_write_text(path, "x,y\n1,2\n")
        assert path.read_text() == "x,y\n1,2\n"

    @pytest.mark.parametrize("site", ["tmp_written", "before_rename"])
    def test_crash_mid_write_keeps_old_contents(self, tmp_path, site):
        """A power cut at any point of the publish leaves the previous
        artifact fully intact and parseable — never a torn file."""
        path = tmp_path / "report.json"
        atomic_write_json(path, {"generation": 1})

        def crash(at):
            if at == site:
                raise SimulatedCrashError(at)

        set_failpoint(crash)
        with pytest.raises(SimulatedCrashError):
            atomic_write_json(path, {"generation": 2})
        set_failpoint(None)
        assert json.loads(path.read_text()) == {"generation": 1}
        # The aborted temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]

    def test_crash_on_first_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "fresh.json"
        set_failpoint(lambda at: (_ for _ in ()).throw(
            SimulatedCrashError(at)) if at == "before_rename" else None)
        with pytest.raises(SimulatedCrashError):
            atomic_write_json(path, {"x": 1})
        set_failpoint(None)
        assert not path.exists()

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "r.json"
        for generation in range(3):
            atomic_write_json(path, {"generation": generation})
        assert json.loads(path.read_text()) == {"generation": 2}


class TestCellKey:
    def test_stable_and_content_addressed(self):
        config = SystemConfig.scaled(16)
        a = SimCell(workload=("gcc", (), {}), scheme="src", config=config,
                    seed=3)
        b = SimCell(workload=("gcc", (), {}), scheme="src", config=config,
                    seed=3)
        assert cell_key(a) == cell_key(b)

    def test_any_field_changes_the_key(self):
        config = SystemConfig.scaled(16)
        base = SimCell(workload=("gcc", (), {}), scheme="src",
                       config=config, seed=3)
        variants = [
            SimCell(workload=("gcc", (), {}), scheme="sac", config=config,
                    seed=3),
            SimCell(workload=("mcf", (), {}), scheme="src", config=config,
                    seed=3),
            SimCell(workload=("gcc", (), {}), scheme="src", config=config,
                    seed=4),
            SimCell(workload=("gcc", (), {}), scheme="src", config=config,
                    seed=3, verify=True),
        ]
        keys = {cell_key(cell) for cell in variants}
        assert cell_key(base) not in keys
        assert len(keys) == len(variants)

    def test_runner_identity_mixed_in(self):
        def runner_a(cell):
            return cell

        def runner_b(cell):
            return cell

        assert cell_key(1, runner_a) != cell_key(1, runner_b)

    def test_handles_tuples_dicts_and_numpy(self):
        cell = (np.int64(4), {"b": 2, "a": np.float64(0.5)}, [1, (2, 3)])
        same = (4, {"a": 0.5, "b": 2}, [1, (2, 3)])
        assert cell_key(cell) == cell_key(same)

    def test_fingerprint_is_order_independent(self):
        keys = [cell_key(i) for i in range(5)]
        assert sweep_fingerprint(keys) == sweep_fingerprint(keys[::-1])
        assert sweep_fingerprint(keys) != sweep_fingerprint(keys[:-1])


def _outcome(index=0, label="cell", result=None, attempts=1):
    return CellOutcome(index=index, label=label, ok=True, result=result,
                       attempts=attempts, wall_seconds=0.25)


class TestCheckpointJournal:
    def test_record_and_resume(self, tmp_path):
        with CheckpointJournal(tmp_path, fingerprint="fp",
                               total_cells=2) as journal:
            journal.record("k0", _outcome(0, "a", {"x": 1}))
            journal.record("k1", _outcome(1, "b", {"y": 2}, attempts=3))

        resumed = CheckpointJournal(tmp_path, fingerprint="fp",
                                    total_cells=2, resume=True)
        assert set(resumed.completed) == {"k0", "k1"}
        assert resumed.restore_result(resumed.completed["k0"]) == {"x": 1}
        assert resumed.completed["k1"]["attempts"] == 3
        resumed.close()

    def test_fingerprint_mismatch_refuses_merge(self, tmp_path):
        CheckpointJournal(tmp_path, fingerprint="sweep-A").close()
        with pytest.raises(CheckpointMismatchError):
            CheckpointJournal(tmp_path, fingerprint="sweep-B", resume=True)

    def test_fresh_open_truncates_previous_journal(self, tmp_path):
        with CheckpointJournal(tmp_path, fingerprint="fp") as journal:
            journal.record("k0", _outcome())
        journal = CheckpointJournal(tmp_path, fingerprint="fp")  # no resume
        assert journal.completed == {}
        journal.close()
        resumed = CheckpointJournal(tmp_path, fingerprint="fp", resume=True)
        assert resumed.completed == {}
        resumed.close()

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        with CheckpointJournal(tmp_path, fingerprint="fp") as journal:
            journal.record("k0", _outcome(0, "a", 11))
        path = tmp_path / "journal.jsonl"
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "key": "k1", "ok": tr')   # power cut

        resumed = CheckpointJournal(tmp_path, fingerprint="fp", resume=True)
        assert set(resumed.completed) == {"k0"}
        resumed.record("k2", _outcome(2, "c", 33))
        resumed.close()
        # Every surviving line parses cleanly: the torn tail was
        # physically truncated before the new append.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["header", "cell", "cell"]
        assert records[-1]["key"] == "k2"

    def test_injected_crash_mid_append_is_resumable(self, tmp_path):
        journal = CheckpointJournal(tmp_path, fingerprint="fp",
                                    fail_after_appends=2)
        journal.record("k0", _outcome(0, "a", 1))
        with pytest.raises(SimulatedCrashError):
            journal.record("k1", _outcome(1, "b", 2))
        resumed = CheckpointJournal(tmp_path, fingerprint="fp", resume=True)
        assert set(resumed.completed) == {"k0"}
        resumed.close()

    def test_pickle_restores_exact_objects(self, tmp_path):
        result = {"nested": [1.5, {"deep": (1, 2)}], "bytes": b"\x00\xff"}
        with CheckpointJournal(tmp_path, fingerprint="fp") as journal:
            journal.record("k", _outcome(result=result))
        resumed = CheckpointJournal(tmp_path, fingerprint="fp", resume=True)
        assert resumed.restore_result(resumed.completed["k"]) == result
        resumed.close()


class TestFailureTaxonomy:
    def test_classification(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_failure(BrokenProcessPool()) == "crashed"
        assert classify_failure(MemoryError()) == "oom"
        assert classify_failure(FatalCellError("bad config")) == "fatal"
        assert classify_failure(ValueError("boom")) == "retryable"
        assert classify_failure(
            ValueError("boom"), fatal_types=(ValueError,)) == "fatal"

    def test_policy_budgets(self):
        policy = RetryPolicy(retries=2, oom_retries=1, timeout_retries=3)
        assert policy.max_attempts("retryable") == 3
        assert policy.max_attempts("timeout") == 4
        assert policy.max_attempts("oom") == 2
        assert policy.max_attempts("crashed") == 3   # follows retries
        assert policy.max_attempts("fatal") == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.5)
        for attempt in (1, 2, 5):
            first = policy.delay("cell-key", attempt)
            assert first == policy.delay("cell-key", attempt)
            assert 0.01 <= first <= 0.5
        # Different keys decorrelate.
        assert policy.delay("a", 3) != policy.delay("b", 3)

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0)
        assert policy.delay("k", 4) == 0.0

    def test_too_many_failures_error_summarizes_classes(self):
        failures = [
            CellOutcome(index=i, label=f"c{i}", ok=False,
                        failure_class="timeout" if i % 2 else "retryable")
            for i in range(4)
        ]
        err = TooManyFailuresError(4, failures)
        assert err.limit == 4
        assert "timeout=2" in str(err)
        assert "retryable=2" in str(err)
        assert "--max-failures" in str(err)


class TestSignalDrain:
    def test_first_signal_requests_drain(self):
        with SignalDrain() as drain:
            assert not drain.requested
            signal.raise_signal(signal.SIGTERM)
            assert drain.requested
            assert drain.signal_name == "SIGTERM"
            assert drain.signal_count == 1

    def test_second_signal_hard_stops(self):
        with SignalDrain() as drain:
            signal.raise_signal(signal.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
            assert drain.signal_count == 2

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with SignalDrain():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_on_signal_callback(self):
        seen = []
        with SignalDrain(on_signal=lambda name, n: seen.append((name, n))):
            signal.raise_signal(signal.SIGTERM)
        assert seen == [("SIGTERM", 1)]


class TestJournalFilePermanence:
    def test_journal_lines_parse_after_kill(self, tmp_path):
        """Acceptance slice: every line of a journal that survived a
        mid-append crash is complete JSON (no torn artifacts)."""
        journal = CheckpointJournal(tmp_path, fingerprint="fp",
                                    fail_after_appends=4)  # header counts
        for i in range(3):
            journal.record(f"k{i}", _outcome(i, f"c{i}", i))
        with pytest.raises(SimulatedCrashError):
            journal.record("k3", _outcome(3, "c3", 3))
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        parsed = 0
        for line in lines[:-1]:      # all but the torn tail must parse
            json.loads(line)
            parsed += 1
        assert parsed == 4           # header + 3 cells
        assert os.path.getsize(tmp_path / "journal.jsonl") > 0

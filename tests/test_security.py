"""Threat-model tests (Section 2.1).

The trust base is the processor chip; everything in NVM is attacker-
accessible.  "The attackers might attempt to snoop the bus, scan the
memory, or replay previously captured memory blocks."  These tests play
each of those attackers against the functional controller and check the
paper's security arguments (Section 3.2.2 and 6.1) hold in this
implementation — including that Soteria's clones do not weaken them.
"""

import numpy as np
import pytest

from repro.controller import IntegrityError, SecureMemoryController
from repro.core import make_controller

KB = 1024

SECRET = b"attack at dawn".ljust(64, b"\x00")


@pytest.fixture
def ctrl():
    c = SecureMemoryController(
        256 * KB, metadata_cache_bytes=4 * KB, rng=np.random.default_rng(1)
    )
    return c


def cold(ctrl):
    """Drop all trusted cached copies so reads hit NVM again."""
    ctrl.metadata_cache.flush_all()
    ctrl.wpq.drain_all()
    return ctrl


class TestConfidentiality:
    def test_memory_scan_reveals_no_plaintext(self, ctrl):
        ctrl.write(0, SECRET)
        ctrl.flush()
        for address in ctrl.nvm.touched_addresses():
            assert SECRET[:14] not in ctrl.nvm.read_block(address)

    def test_equal_plaintexts_have_unequal_ciphertexts(self, ctrl):
        """Counter-mode with per-(address, counter) OTPs: an observer
        cannot tell that two blocks hold the same data."""
        ctrl.write(0, SECRET)
        ctrl.write(1, SECRET)
        ctrl.flush()
        a = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        b = ctrl.nvm.read_block(ctrl.amap.data_addr(1))
        assert a != b

    def test_rewrite_changes_ciphertext(self, ctrl):
        """Temporal uniqueness: rewriting the same value produces a new
        ciphertext (the counter advanced), defeating snapshot diffing."""
        ctrl.write(0, SECRET)
        ctrl.flush()
        first = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        ctrl.write(0, SECRET)
        ctrl.flush()
        second = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        assert first != second

    def test_no_otp_reuse_across_page_reencryption(self, ctrl):
        """Minor overflow resets minors but bumps the major: effective
        counters never repeat, so pads never repeat."""
        seen = set()
        for i in range(130):  # crosses the 7-bit minor overflow
            ctrl.write(0, bytes([i % 256]) * 64)
            entry = ctrl.metadata_cache.peek(ctrl.amap.node_addr(1, 0))
            seen.add(entry.block.effective_counter(0))
        assert len(seen) == 130


class TestSpoofingAndSplicing:
    def test_spoofed_ciphertext_detected(self, ctrl):
        ctrl.write(0, SECRET)
        ctrl.flush()
        cold(ctrl)
        ctrl.nvm.write_block(ctrl.amap.data_addr(0), b"\xee" * 64)
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_spliced_blocks_detected(self, ctrl):
        """Swapping two valid (ciphertext, MAC) pairs between addresses
        fails: the MAC binds the address."""
        ctrl.write(0, b"\x01" * 64)
        ctrl.write(8, b"\x02" * 64)  # different MAC blocks (8 apart)
        ctrl.flush()
        a_data = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        b_data = ctrl.nvm.read_block(ctrl.amap.data_addr(8))
        a_mac = ctrl.nvm.read_block(ctrl.amap.mac_addr(0))
        b_mac = ctrl.nvm.read_block(ctrl.amap.mac_addr(8))
        ctrl.nvm.write_block(ctrl.amap.data_addr(0), b_data)
        ctrl.nvm.write_block(ctrl.amap.data_addr(8), a_data)
        ctrl.nvm.write_block(ctrl.amap.mac_addr(0), b_mac)
        ctrl.nvm.write_block(ctrl.amap.mac_addr(8), a_mac)
        cold(ctrl)
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_relocated_tree_node_detected(self, ctrl):
        """Copying a valid node over a sibling fails: node MACs bind
        (level, index)."""
        rng = np.random.default_rng(5)
        for _ in range(1000):
            ctrl.write(int(rng.integers(0, ctrl.num_data_blocks)), bytes(64))
        ctrl.flush()
        touched = [
            i for i in range(ctrl.amap.level_sizes[1])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(2, i))
        ]
        assert len(touched) >= 2
        src, dst = touched[0], touched[1]
        ctrl.nvm.write_block(
            ctrl.amap.node_addr(2, dst),
            ctrl.nvm.read_block(ctrl.amap.node_addr(2, src)),
        )
        cold(ctrl)
        victim = ctrl.amap.data_blocks_covered(2, dst)[0]
        with pytest.raises(IntegrityError):
            ctrl.read(victim)


class TestReplay:
    def _snapshot(self, ctrl, addresses):
        return {a: ctrl.nvm.read_block(a) for a in addresses}

    def _restore(self, ctrl, snapshot):
        for address, raw in snapshot.items():
            ctrl.nvm.write_block(address, raw)

    def test_data_replay_detected(self, ctrl):
        ctrl.write(0, b"v1".ljust(64, b"\x00"))
        ctrl.flush()
        snap = self._snapshot(
            ctrl, [ctrl.amap.data_addr(0), ctrl.amap.mac_addr(0)]
        )
        ctrl.write(0, b"v2".ljust(64, b"\x00"))
        ctrl.flush()
        self._restore(ctrl, snap)
        cold(ctrl)
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_full_branch_replay_detected(self, ctrl):
        """Even replaying data + MAC + counter + sidecar + every tree
        node fails: the root lives on-chip ('the attacker will have to
        replay ... the root of the Merkle-tree')."""
        ctrl.write(0, b"v1".ljust(64, b"\x00"))
        ctrl.flush()
        snap = self._snapshot(ctrl, ctrl.nvm.touched_addresses())
        ctrl.write(0, b"v2".ljust(64, b"\x00"))
        ctrl.flush()
        self._restore(ctrl, snap)
        cold(ctrl)
        with pytest.raises(IntegrityError):
            ctrl.read(0)


class TestSoteriaSecurity:
    """Section 3.2.2: cloning must not create replay oracles."""

    def _src(self):
        return make_controller(
            "src", 256 * KB, metadata_cache_bytes=4 * KB,
            rng=np.random.default_rng(3),
        )

    def test_replayed_original_repaired_from_clone(self):
        """Replaying one stale copy is *corrected*, not accepted: the
        clone holds the current value and purifies the original."""
        ctrl = self._src()
        rng = np.random.default_rng(4)
        for _ in range(600):
            ctrl.write(int(rng.integers(0, ctrl.num_data_blocks)), bytes(64))
        ctrl.flush()
        target = next(
            i for i in range(ctrl.amap.level_sizes[0])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        original = ctrl.amap.node_addr(1, target)
        stale = ctrl.nvm.read_block(original)
        # Advance the block, then replay only the original copy.
        for _ in range(ctrl.osiris_limit + 1):
            ctrl.write(target * 64, bytes(64))
        ctrl.flush()
        ctrl.nvm.write_block(original, stale)
        cold(ctrl)
        ctrl.read(target * 64)  # repaired silently
        assert ctrl.stats.clone_repairs == 1
        # Purification rewrote the replayed original with current data.
        ctrl.wpq.drain_all()
        assert ctrl.nvm.read_block(original) != stale

    def test_replaying_all_copies_detected(self):
        """Replaying original *and* every clone (plus data, MACs and
        sidecar) still fails at the parent: Soteria's recovery 'will
        fail in the integrity verification stage, and the attack will
        be detected'."""
        ctrl = self._src()
        ctrl.write(0, b"v1".ljust(64, b"\x00"))
        ctrl.flush()
        addresses = (
            ctrl.amap.all_copies(1, 0)
            + [ctrl.amap.data_addr(0), ctrl.amap.mac_addr(0),
               ctrl.amap.counter_mac_addr(0)]
        )
        snap = {a: ctrl.nvm.read_block(a) for a in addresses}
        ctrl.write(0, b"v2".ljust(64, b"\x00"))
        ctrl.flush()
        for address, raw in snap.items():
            ctrl.nvm.write_block(address, raw)
        cold(ctrl)
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_clone_region_leaks_no_extra_plaintext(self):
        """Clones duplicate counters/tree nodes, never data: the clone
        region's contents are non-secret metadata by design."""
        ctrl = self._src()
        ctrl.write(0, SECRET)
        ctrl.flush()
        for address in ctrl.nvm.touched_addresses():
            if ctrl.amap.region_of(address)[0] == "clone":
                assert SECRET[:14] not in ctrl.nvm.read_block(address)

"""Tests for the parallel sweep engine and the pinned bench."""

import json
import time
from dataclasses import asdict

import pytest

from repro.faults import CampaignConfig, run_campaign
from repro.sim import (
    CellOutcome,
    SimCell,
    SweepEngine,
    SystemConfig,
    run_bench,
    run_schemes,
    write_bench,
)

GCC = ("gcc", (), {"footprint_bytes": 1 << 20, "num_refs": 1200})
UBENCH = ("ubench", (64,), {"footprint_bytes": 1 << 20, "num_refs": 1200})


def _cells(schemes=("baseline", "src"), seed=5):
    config = SystemConfig.scaled(16)
    return [
        SimCell(workload=spec, scheme=scheme, config=config, seed=seed)
        for spec in (GCC, UBENCH)
        for scheme in schemes
    ]


# ---- picklable runners for failure-path tests ----

def _fail_on_odd(cell):
    if cell % 2 == 1:
        raise ValueError(f"cell {cell} is odd")
    return cell * 10


def _always_fail(cell):
    raise RuntimeError("nope")


def _slow(cell):
    time.sleep(2.0)
    return cell


def _fail_odd_varied_pace(cell):
    # Even cells finish fast, odd cells slowly: completions arrive out
    # of submission order, stressing per-cell attempt bookkeeping.
    time.sleep(0.02 if cell % 2 == 0 else 0.15)
    if cell % 2 == 1:
        raise ValueError(f"cell {cell} is odd")
    return cell * 10


def _sleep_half(cell):
    time.sleep(0.5)
    return cell


class TestSweepEngine:
    def test_serial_matches_parallel_bit_equal(self):
        """The acceptance criterion: jobs=1 and jobs=N produce
        bit-equal SimResult fields under a fixed seed."""
        serial = SweepEngine(_cells(), jobs=1).run()
        parallel = SweepEngine(_cells(), jobs=2).run()
        assert all(o.ok for o in serial + parallel)
        assert [asdict(o.result) for o in serial] == [
            asdict(o.result) for o in parallel
        ]

    def test_results_in_submission_order(self):
        outcomes = SweepEngine(_cells(), jobs=2).run()
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.label for o in outcomes] == [
            "gcc/baseline", "gcc/src", "ubench64/baseline", "ubench64/src"
        ]
        assert all(isinstance(o, CellOutcome) for o in outcomes)

    def test_per_cell_seeds_differentiate_sweeps(self):
        a = SweepEngine(_cells(seed=1), jobs=1).run()
        b = SweepEngine(_cells(seed=2), jobs=1).run()
        # gcc draws from the rng, so a different seed changes the trace.
        assert asdict(a[0].result) != asdict(b[0].result)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_cell_degrades_gracefully(self, jobs):
        outcomes = SweepEngine(
            [0, 1, 2, 3], runner=_fail_on_odd, jobs=jobs, retries=1
        ).run()
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert outcomes[0].result == 0
        assert outcomes[2].result == 20
        assert "odd" in outcomes[1].error
        # Failing cells consumed the retry budget.
        assert outcomes[1].attempts == 2

    def test_retries_exhausted_reports_error(self):
        outcomes = SweepEngine(
            [7], runner=_always_fail, jobs=1, retries=2
        ).run()
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert "RuntimeError" in outcomes[0].error

    def test_timeout_degrades_not_fatal(self):
        outcomes = SweepEngine(
            [1], runner=_slow, jobs=2, timeout=0.3
        ).run()
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error

    def test_progress_callback_reports_eta(self):
        seen = []
        SweepEngine(_cells(), jobs=1, progress=seen.append).run()
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in seen)
        # Every completion here is fresh, so an observed rate exists
        # and the ETA is a real number (None is reserved for streams
        # with no fresh completions yet — see test_resume.py).
        assert all(p.eta_seconds is not None for p in seen)
        assert all(p.eta_seconds >= 0 for p in seen)
        assert seen[-1].eta_seconds == 0
        assert all(p.ok for p in seen)

    def test_empty_sweep(self):
        assert SweepEngine([], jobs=4).run() == []

    def test_exact_attempts_under_out_of_order_completion(self):
        """Retry accounting is per-cell even when jobs=N completes
        cells out of submission order: attempts means runner starts."""
        engine = SweepEngine(
            list(range(6)), runner=_fail_odd_varied_pace, jobs=3, retries=1
        )
        outcomes = engine.run()
        assert [o.ok for o in outcomes] == [
            True, False, True, False, True, False
        ]
        assert [o.attempts for o in outcomes] == [1, 2, 1, 2, 1, 2]
        for outcome in outcomes[1::2]:
            classes = [h["failure_class"] for h in outcome.attempt_history]
            assert classes == ["retryable", "retryable"]
        assert engine.registry.snapshot()["runtime.retries"] == 3

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_progress_done_strictly_increases(self, jobs):
        """A retried cell reports done exactly once — no double count
        in the progress stream or the ETA basis."""
        seen = []
        SweepEngine(
            list(range(4)), runner=_fail_odd_varied_pace, jobs=jobs,
            retries=2, progress=seen.append,
        ).run()
        dones = [p.done for p in seen]
        assert dones == sorted(set(dones)) == [1, 2, 3, 4]
        assert sorted(p.label for p in seen) == ["0", "1", "2", "3"]
        assert all(p.total == 4 for p in seen)

    def test_queued_cells_do_not_time_out(self):
        """The timeout clock starts when a cell is observed running,
        not when it is queued: 8 half-second cells through 2 workers
        must all pass with a 1.2s per-cell timeout."""
        outcomes = SweepEngine(
            list(range(8)), runner=_sleep_half, jobs=2, timeout=1.2
        ).run()
        assert [o.ok for o in outcomes] == [True] * 8
        assert [o.attempts for o in outcomes] == [1] * 8
        assert [o.result for o in outcomes] == list(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepEngine([], retries=-1)


class TestRunSchemesParallel:
    def test_jobs_parallel_bit_equal_to_serial(self):
        config = SystemConfig.scaled(16)
        serial = run_schemes(GCC, config=config, seed=3, jobs=1)
        parallel = run_schemes(GCC, config=config, seed=3, jobs=2)
        assert {k: asdict(v) for k, v in serial.items()} == {
            k: asdict(v) for k, v in parallel.items()
        }

    def test_jobs_rejects_closures(self):
        with pytest.raises(TypeError):
            run_schemes(lambda: None, jobs=2)


class TestBench:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_bench(refs=500, jobs=2, seed=2021)

    def test_grid_is_pinned(self, payload):
        assert payload["schema"] == "bench_perf/v4"
        assert payload["telemetry_schema"] == "telemetry/v1"
        assert len(payload["cells"]) == 15  # 5 workloads x 3 schemes
        workloads = {c["workload"] for c in payload["cells"]}
        assert workloads == {"ctree", "hashmap", "ubench", "mcf", "gcc"}
        assert all(c["ok"] for c in payload["cells"])

    def test_gcc_cell_is_cache_resident_and_scaled(self, payload):
        """The gcc showcase cell pins a 512 KiB footprint and 5x refs."""
        gcc = [c for c in payload["cells"] if c["workload"] == "gcc"]
        assert len(gcc) == 3
        assert all(c["refs"] == 500 * 5 for c in gcc)
        others = [c for c in payload["cells"] if c["workload"] != "gcc"]
        assert all(c["refs"] == 500 for c in others)

    def test_store_leg_is_bit_identical(self, payload):
        """The cold-store leg must change nothing but the wall-clock:
        same results as the plain serial leg, one published entry per
        cell, zero hits (the store starts empty)."""
        store = payload["store"]
        assert store["identical_outputs"] is True
        assert store["wall_s"] > 0
        assert store["hits"] == 0
        assert store["misses"] == len(payload["cells"])
        assert store["writes"] == len(payload["cells"])
        assert 0.0 <= store["overhead_fraction"] < 1.0

    def test_cells_report_latency_percentiles(self, payload):
        for cell in payload["cells"]:
            assert cell["read_p95_ns"] >= 0
            assert cell["write_p95_ns"] >= 0
        for result in payload["results"].values():
            summary = result["latency_ns"]["read"]
            assert summary["count"] > 0
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_parallel_leg_identical(self, payload):
        assert payload["identical_outputs"] is True
        assert payload["speedup"] is not None

    def test_cells_report_rates(self, payload):
        for cell in payload["cells"]:
            assert cell["serial_wall_s"] > 0
            assert cell["refs_per_s"] > 0

    def test_write_bench_round_trips(self, payload, tmp_path):
        path = write_bench(payload, str(tmp_path / "BENCH_perf.json"))
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded["identical_outputs"] is True
        assert loaded["results"] == json.loads(json.dumps(payload["results"]))


class TestCampaignParallel:
    def test_jobs_parallel_bit_equal_to_serial(self):
        config = CampaignConfig(
            data_bytes=16 * 1024,
            ops=150,
            num_faults=2,
            schemes=("baseline", "src"),
            targets=("counter",),
            scrub_intervals=(0, 50),
            seed=11,
        )
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2)
        assert serial.to_json() == parallel.to_json()

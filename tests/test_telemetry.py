"""Tests for the unified telemetry layer.

Covers the instruments and registry in isolation, the tracer, the
registry-wide warmup reset (every stat domain zeroes through one
``registry.reset()``), the golden metric manifest, and the sorted-key /
schema-stamped report contracts.
"""

import json
import os

import pytest

from repro.sim import SecureSystem, SystemConfig
from repro.telemetry import (
    SCHEMA_VERSION,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    LabeledCounterMetric,
    MetricRegistry,
    Tracer,
    manifest_json,
)
from repro.workloads import gcc, ubench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestInstruments:
    def test_counter_inc_and_reset(self):
        metric = CounterMetric("x.count")
        metric.inc()
        metric.n += 2
        assert metric.value == 3
        assert not metric.is_zero()
        metric.reset()
        assert metric.is_zero() and metric.snapshot() == 0

    def test_gauge_set_semantics(self):
        metric = GaugeMetric("x.level")
        metric.set(7)
        metric.set(4)  # absolute, not cumulative
        assert metric.value == 4
        metric.reset()
        assert metric.is_zero()

    def test_labeled_counter_is_a_counter(self):
        metric = LabeledCounterMetric("x.by_kind", label="kind")
        metric["data"] += 2
        metric.inc("clone", 3)
        assert metric["missing"] == 0
        assert metric.value == 5
        assert metric == {"data": 2, "clone": 3}
        assert metric.snapshot() == {"clone": 3, "data": 2}
        assert list(metric.snapshot()) == ["clone", "data"]  # sorted
        metric.reset()
        assert metric.is_zero()

    def test_histogram_percentiles_are_ordered(self):
        metric = HistogramMetric("x.latency", buckets=[1, 2, 4, 8, 16])
        for value in [0.5, 1.5, 3, 3, 6, 12, 100]:
            metric.observe(value)
        summary = metric.summary()
        assert summary["count"] == 7
        assert 0 <= summary["p50"] <= summary["p95"] <= summary["p99"]
        # Overflow observations clamp to the last finite edge.
        assert summary["p99"] <= 16

    def test_histogram_empty_and_reset(self):
        metric = HistogramMetric("x.latency", buckets=[1, 2])
        assert metric.percentile(0.5) == 0.0
        metric.observe(1.5)
        metric.reset()
        assert metric.is_zero() and metric.count == 0

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            CounterMetric("bad name")
        with pytest.raises(ValueError):
            CounterMetric("trailing.")


class TestMetricRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.counter("a.b")

    def test_adopt_skips_registered(self):
        registry = MetricRegistry()
        metric = registry.counter("a.b")
        registry.adopt([metric, CounterMetric("a.c")])
        assert registry.names() == ["a.b", "a.c"]

    def test_snapshot_sorted_and_schema_stamped(self):
        registry = MetricRegistry()
        registry.counter("z.last").inc(1)
        registry.counter("a.first").inc(2)
        assert list(registry.snapshot()) == ["a.first", "z.last"]
        payload = json.loads(registry.to_json())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["metrics"] == {"a.first": 2, "z.last": 1}

    def test_delta_since_snapshot(self):
        registry = MetricRegistry()
        counter = registry.counter("c")
        labeled = registry.labeled_counter("l", label="kind")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", buckets=[1, 2])
        counter.inc(5)
        labeled.inc("x", 2)
        before = registry.snapshot()
        counter.inc(3)
        labeled.inc("x")
        labeled.inc("y", 4)
        gauge.set(9)
        hist.observe(1)
        delta = registry.delta(before)
        assert delta["c"] == 3
        assert delta["l"] == {"x": 1, "y": 4}
        assert delta["g"] == 9  # gauges report current value
        assert delta["h"] == {"count": 1}

    def test_reset_zeroes_every_instrument(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.labeled_counter("l").inc("k")
        registry.gauge("g").set(1)
        registry.histogram("h", buckets=[1]).observe(5)
        registry.reset()
        assert all(metric.is_zero() for metric in registry)


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert tracer.enabled is False
        tracer.emit("anything", x=1)  # no subscribers: no-op

    def test_subscribe_emit_unsubscribe(self):
        tracer = Tracer()
        events = []
        fn = tracer.subscribe("op", events.append)
        assert tracer.enabled and tracer.wants("op")
        tracer.emit("op", index=3)
        tracer.emit("other", index=4)  # nobody wants it
        assert len(events) == 1
        assert events[0].kind == "op" and events[0].index == 3
        assert events[0].fields == {"index": 3}
        tracer.unsubscribe("op", fn)
        assert tracer.enabled is False


class TestSystemTelemetry:
    @pytest.fixture
    def config(self):
        return SystemConfig.scaled(16)

    def test_registry_covers_all_domains(self, config):
        system = SecureSystem("sac", config=config)
        prefixes = {name.split(".")[0] for name in system.registry.names()}
        assert {"cache", "metadata_cache", "controller", "nvm", "latency"} <= prefixes

    def test_reset_measurement_stats_zeroes_every_instrument(self, config):
        """Regression (registry-wide reset): after driving traffic,
        one reset call must zero *every* registered instrument — a new
        stat domain cannot leak warmup traffic into measured rates."""
        system = SecureSystem("sac", config=config)
        system.run(gcc(footprint_bytes=1 << 20, num_refs=1500))
        dirty = [m.name for m in system.registry if not m.is_zero()]
        assert dirty, "the run should have touched some instruments"
        system.reset_measurement_stats()
        still_dirty = [m.name for m in system.registry if not m.is_zero()]
        assert still_dirty == []

    def test_stat_views_share_registry_storage(self, config):
        system = SecureSystem("baseline", config=config)
        system.run(ubench(64, footprint_bytes=1 << 20, num_refs=500))
        controller = system.controller
        registry = system.registry
        assert registry.get("controller.data_reads").value == controller.stats.data_reads
        assert registry.get("nvm.reads").value == controller.nvm.read_count
        assert (
            registry.get("metadata_cache.misses").value
            == controller.metadata_cache.stats.misses
        )
        llc = system.hierarchy.llc
        assert registry.get(f"cache.{llc.name}.hits").value == llc.stats.hits

    def test_latency_histograms_in_result(self, config):
        system = SecureSystem("baseline", config=config)
        result = system.run(ubench(64, footprint_bytes=1 << 20, num_refs=2000))
        read = result.latency_ns["read"]
        write = result.latency_ns["write"]
        assert read["count"] + write["count"] == result.memory_requests
        for summary in (read, write):
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_simresult_dicts_are_key_sorted(self, config):
        system = SecureSystem("sac", config=config)
        result = system.run(gcc(footprint_bytes=1 << 20, num_refs=1500))
        assert list(result.writes_by_kind) == sorted(result.writes_by_kind)
        assert list(result.reads_by_kind) == sorted(result.reads_by_kind)
        assert list(result.evictions_by_level) == sorted(result.evictions_by_level)

    def test_op_hook_back_compat(self, config):
        system = SecureSystem("baseline", config=config)
        seen = []
        system.run(
            ubench(64, footprint_bytes=1 << 20, num_refs=300),
            op_hook=seen.append,
        )
        assert seen == list(range(300))
        # The temporary subscription is removed when run() returns.
        assert system.tracer.enabled is False

    def test_tracer_emits_structured_op_events(self, config):
        system = SecureSystem("baseline", config=config)
        kinds = []
        system.tracer.subscribe("op", lambda e: kinds.append(e.index))
        system.run(ubench(64, footprint_bytes=1 << 20, num_refs=100))
        assert kinds == list(range(100))

    def test_demand_read_and_metadata_events(self, config):
        system = SecureSystem("baseline", config=config)
        events = []
        system.tracer.subscribe("demand_read", events.append)
        system.tracer.subscribe("metadata_miss", events.append)
        system.run(ubench(64, footprint_bytes=1 << 20, num_refs=500))
        kinds = {e.kind for e in events}
        assert kinds == {"demand_read", "metadata_miss"}


class TestManifest:
    def test_golden_manifest_matches(self):
        """The committed manifest is the review gate for metric renames:
        regenerate with `python -m repro metrics --manifest --out
        telemetry_manifest.json` when instruments legitimately change."""
        golden_path = os.path.join(REPO_ROOT, "telemetry_manifest.json")
        with open(golden_path) as fh:
            golden = fh.read()
        assert manifest_json() == golden

    def test_manifest_shape(self):
        manifest = json.loads(manifest_json())
        assert manifest["schema"] == SCHEMA_VERSION
        names = [m["name"] for m in manifest["metrics"]]
        assert names == sorted(names)
        assert len(names) == len(set(names))
        by_name = {m["name"]: m for m in manifest["metrics"]}
        assert by_name["controller.nvm_writes_by_kind"]["type"] == "labeled_counter"
        assert by_name["controller.nvm_writes_by_kind"]["label"] == "kind"
        assert by_name["latency.read"]["type"] == "histogram"
        assert by_name["latency.read"]["buckets"] == [float(2 ** k) for k in range(1, 15)]
        assert by_name["controller.quarantined_bytes"]["type"] == "gauge"
        assert all(m["help"] for m in manifest["metrics"])


class TestHistogramOverflowAndBatch:
    """The latency-reporting honesty fixes: overflow surfaced, edge
    semantics pinned, and the batched path bit-identical to scalar."""

    def test_overflow_surfaced_in_summary(self):
        metric = HistogramMetric("x.latency", buckets=[1, 2, 4])
        for value in [0.5, 1.5, 100, 200, 300]:
            metric.observe(value)
        assert metric.overflow == 3
        summary = metric.summary()
        assert summary["overflow"] == 3
        assert summary["count"] == 5

    def test_overflowing_percentile_truncates_at_last_edge(self):
        """A quantile landing in the overflow bucket has no finite
        upper edge: the last edge is returned as an honest lower
        bound, never an extrapolated guess."""
        metric = HistogramMetric("x.latency", buckets=[1, 2, 4])
        for value in [100, 200, 300]:
            metric.observe(value)
        assert metric.percentile(0.5) == 4.0
        assert metric.percentile(0.99) == 4.0
        assert metric.summary()["p99"] == 4.0
        assert metric.summary()["overflow"] == 3

    def test_edge_value_counts_in_upper_bucket(self):
        """Pinned semantics: bucket i covers (edges[i-1], edges[i]] —
        a value exactly on an edge lands in the bucket whose *upper*
        edge it is (bisect_left)."""
        metric = HistogramMetric("x.latency", buckets=[1, 2, 4])
        metric.observe(2)          # exactly on an edge
        assert metric.counts == [0, 1, 0, 0]
        metric.observe(4)          # last finite edge: NOT overflow
        assert metric.counts == [0, 1, 1, 0]
        assert metric.overflow == 0
        metric.observe(4.000001)   # just past the edge: overflow
        assert metric.overflow == 1

    def test_observe_batch_bit_identical_to_sequential(self):
        """counts, count and total (float, accumulation-order
        sensitive) must be exactly equal, not approximately."""
        import numpy as np
        rng = np.random.default_rng(7)
        values = (rng.random(5000) * 20.0).tolist()
        edges = [1, 2, 4, 8, 16]
        scalar = HistogramMetric("x.a", buckets=edges)
        batched = HistogramMetric("x.b", buckets=edges)
        for value in values:
            scalar.observe(value)
        # Uneven batch splits: identity must not depend on batching.
        for chunk in (values[:1], values[1:1000], values[1000:], []):
            batched.observe_batch(chunk)
        assert batched.counts == scalar.counts
        assert batched.count == scalar.count
        assert batched.total == scalar.total     # bit-equal float
        assert batched.summary() == scalar.summary()

    def test_percentile_tracks_numpy_percentile(self):
        """Within-bucket linear interpolation keeps the estimate close
        to numpy's exact order statistic (one bucket width is the
        resolution bound), and the overflow case truncates where numpy
        would report the true larger value."""
        import numpy as np
        rng = np.random.default_rng(11)
        values = (rng.random(8000) * 16.0).tolist()
        edges = [2 ** k for k in range(-2, 5)]   # 0.25 .. 16
        metric = HistogramMetric("x.latency", buckets=edges)
        metric.observe_batch(values)
        assert metric.overflow == 0
        for q in (0.50, 0.90, 0.95, 0.99):
            exact = float(np.percentile(values, q * 100))
            estimate = metric.percentile(q)
            # The winning bucket bounds the error by its own width.
            from bisect import bisect_left
            index = bisect_left(metric.edges, exact)
            lower = metric.edges[index - 1] if index > 0 else 0.0
            width = metric.edges[min(index, len(metric.edges) - 1)] - lower
            assert abs(estimate - exact) <= width + 1e-9

        # Overflow: numpy sees the real tail; the histogram truncates
        # at the last edge and says so via the overflow count.
        tail = values + [500.0] * 800            # ~9% above the edge
        overflowing = HistogramMetric("x.tail", buckets=edges)
        overflowing.observe_batch(tail)
        assert overflowing.overflow == 800
        assert overflowing.percentile(0.99) == float(edges[-1])
        assert float(np.percentile(tail, 99)) > edges[-1]

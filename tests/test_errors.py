"""Every raise site of the typed error hierarchy, exercised.

The controller's contract is that corrupted state never escapes as
valid data: each dead end raises a specific
:class:`~repro.controller.SecureMemoryError` subclass.  These tests pin
down every ``raise`` site —

* ``DataPoisonedError``   — read of a poisoned data block;
* ``IntegrityError``      — data MAC mismatch, dead metadata node
  (quarantine off), dead sidecar MAC block (quarantine off);
* ``QuarantinedError``    — dead node / dead sidecar with quarantine
  on, and the fast-fail on later accesses inside a quarantined range;
* ``RecoveryError``       — wrong-mode recovery (both managers),
  unrecoverable shadow entry, shadow-root mismatch, unrecoverable
  counter (Osiris), tree-root mismatch (Osiris);

— plus the poison lifecycle rule: ``write_block`` clears poison.
"""

import numpy as np
import pytest

from repro.controller import (
    DataPoisonedError,
    IntegrityError,
    QuarantinedError,
    RecoveryError,
    SecureMemoryController,
    SecureMemoryError,
)
from repro.memory import NvmDevice
from repro.recovery import OsirisRecovery, RecoveryManager

KB = 1024
MB = 1024 * KB


def make_ctrl(quarantine=False, data_bytes=MB, cache_bytes=2 * KB, seed=7,
              **kwargs):
    return SecureMemoryController(
        data_bytes,
        metadata_cache_bytes=cache_bytes,
        quarantine=quarantine,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def evict_counter_zero(ctrl):
    """Write blocks 0..63, then touch every other counter region so the
    small metadata cache (and victim queue) evict counter 0."""
    for block in range(64):
        ctrl.write(block, bytes([block]) * 64)
    for counter in range(1, ctrl.amap.level_sizes[0]):
        ctrl.write(counter * 64, bytes(64))
    ctrl.flush()
    address = ctrl.amap.node_addr(1, 0)
    assert not ctrl.metadata_cache.contains(address)


class TestHierarchy:
    def test_all_typed_errors_are_secure_memory_errors(self):
        for exc in (DataPoisonedError, IntegrityError, QuarantinedError,
                    RecoveryError):
            assert issubclass(exc, SecureMemoryError)

    def test_quarantined_error_carries_context(self):
        err = QuarantinedError(0x1000, 1, 3, "test reason")
        assert err.address == 0x1000
        assert err.level == 1
        assert err.index == 3
        assert err.reason == "test reason"
        assert "0x1000" in str(err)


class TestDataPoisonedError:
    def test_read_of_poisoned_data_block_raises(self):
        ctrl = make_ctrl()
        ctrl.write(0, b"\xaa" * 64)
        ctrl.flush()
        ctrl.nvm.poison_block(ctrl.amap.data_addr(0))
        with pytest.raises(DataPoisonedError):
            ctrl.read(0)

    def test_write_block_clears_poison(self):
        # Device-level rule first ...
        nvm = NvmDevice(capacity_bytes=4 * KB)
        nvm.write_block(0, b"\x11" * 64)
        nvm.poison_block(0)
        assert nvm.is_poisoned(0)
        nvm.write_block(0, b"\x22" * 64)
        assert not nvm.is_poisoned(0)
        # ... then end to end: overwriting a poisoned data block heals it.
        ctrl = make_ctrl()
        ctrl.write(0, b"\xaa" * 64)
        ctrl.flush()
        ctrl.nvm.poison_block(ctrl.amap.data_addr(0))
        with pytest.raises(DataPoisonedError):
            ctrl.read(0)
        ctrl.write(0, b"\xbb" * 64)
        assert ctrl.read(0).data == b"\xbb" * 64


class TestIntegrityError:
    def test_data_mac_mismatch(self):
        ctrl = make_ctrl()
        ctrl.write(0, b"\xcd" * 64)
        ctrl.flush()
        ctrl.nvm.flip_bits(ctrl.amap.data_addr(0), [5])
        with pytest.raises(IntegrityError) as info:
            ctrl.read(0)
        assert "data MAC" in str(info.value)

    def test_dead_counter_without_quarantine(self):
        ctrl = make_ctrl(quarantine=False)
        evict_counter_zero(ctrl)
        address = ctrl.amap.node_addr(1, 0)
        ctrl.nvm.flip_bits(address, [3, 77, 501])
        ctrl.nvm.poison_block(address)
        with pytest.raises(IntegrityError):
            ctrl.read(0)
        assert ctrl.stats.integrity_failures >= 1

    def test_dead_sidecar_without_quarantine(self):
        ctrl = make_ctrl(quarantine=False)
        evict_counter_zero(ctrl)
        ctrl.nvm.poison_block(ctrl.amap.counter_mac_offset)
        with pytest.raises(IntegrityError) as info:
            ctrl.read(0)
        assert "sidecar" in str(info.value)


class TestQuarantinedError:
    def test_dead_counter_quarantines_and_fails_fast(self):
        ctrl = make_ctrl(quarantine=True)
        evict_counter_zero(ctrl)
        address = ctrl.amap.node_addr(1, 0)
        ctrl.nvm.flip_bits(address, [3, 77, 501])
        ctrl.nvm.poison_block(address)
        with pytest.raises(QuarantinedError):   # discovery (dead node)
            ctrl.read(0)
        assert ctrl.stats.quarantined_nodes == 1
        assert ctrl.stats.quarantined_bytes == 64 * 64
        before = ctrl.stats.quarantined_accesses
        with pytest.raises(QuarantinedError):   # fast-fail in the range
            ctrl.read(5)
        with pytest.raises(QuarantinedError):   # writes fail fast too
            ctrl.write(63, bytes(64))
        assert ctrl.stats.quarantined_accesses == before + 2
        # Memory outside the quarantined range still serves.
        assert ctrl.read(64).data == bytes(64)

    def test_dead_sidecar_quarantines_covered_counters(self):
        ctrl = make_ctrl(quarantine=True)
        evict_counter_zero(ctrl)
        ctrl.nvm.poison_block(ctrl.amap.counter_mac_offset)
        with pytest.raises(QuarantinedError) as info:
            ctrl.read(0)
        assert info.value.level == 0
        # One sidecar block MACs 8 counter blocks -> 512 data blocks.
        with pytest.raises(QuarantinedError):
            ctrl.read(511)


class TestRecoveryError:
    def test_anubis_rejects_bmt_image(self):
        ctrl = make_ctrl(data_bytes=64 * KB, integrity_mode="bmt")
        ctrl.write(0, b"\x01" * 64)
        with pytest.raises(RecoveryError):
            RecoveryManager(ctrl.crash()).recover()

    def test_osiris_rejects_toc_image(self):
        ctrl = make_ctrl(data_bytes=64 * KB)
        ctrl.write(0, b"\x01" * 64)
        with pytest.raises(RecoveryError):
            OsirisRecovery(ctrl.crash())

    def test_unrecoverable_shadow_entry(self):
        ctrl = make_ctrl(data_bytes=256 * KB, cache_bytes=4 * KB)
        rng = np.random.default_rng(3)
        for _ in range(400):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            ctrl.write(block, bytes(int(x) for x in rng.integers(0, 256, 64)))
        image = ctrl.crash()
        target = None
        for slot in range(ctrl.amap.shadow_entries):
            address = ctrl.amap.shadow_entry_addr(slot)
            if not image.nvm.is_touched(address):
                continue
            raw = image.nvm.read_block(address)
            if any(not r.is_empty
                   for r in ctrl.shadow_codec.decode_candidates(raw)):
                target = address
                break
        assert target is not None
        # Byte 56 is the record MAC in the single-copy Anubis layout; the
        # baseline codec has no duplicate to repair from.
        image.nvm.flip_bits(target, [56 * 8 + 1])
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

    def test_shadow_root_mismatch(self):
        ctrl = make_ctrl(data_bytes=64 * KB)
        ctrl.write(0, b"\x01" * 64)
        image = ctrl.crash()
        image.trusted.shadow_root = bytes(len(image.trusted.shadow_root))
        with pytest.raises(RecoveryError) as info:
            RecoveryManager(image).recover()
        assert "root" in str(info.value)

    def test_osiris_unrecoverable_counter(self):
        ctrl = make_ctrl(data_bytes=64 * KB, integrity_mode="bmt")
        for block in range(32):
            ctrl.write(block, bytes([block]) * 64)
        image = ctrl.crash()
        image.nvm.flip_bits(
            ctrl.amap.node_addr(1, 0), [1, 65, 129, 300, 411]
        )
        with pytest.raises(RecoveryError):
            OsirisRecovery(image).recover()

    def test_osiris_tree_root_mismatch(self):
        ctrl = make_ctrl(data_bytes=64 * KB, integrity_mode="bmt")
        for block in range(32):
            ctrl.write(block, bytes([block]) * 64)
        image = ctrl.crash()
        image.trusted.root = None   # simulate lost/garbled on-chip root
        with pytest.raises(RecoveryError) as info:
            OsirisRecovery(image).recover()
        assert "root" in str(info.value)

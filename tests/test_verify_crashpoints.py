"""Crash-point harness: power cuts at sampled depths, recovery, and the
recovered / reported-lost / quarantined trichotomy."""

import pytest

from repro.cli import main
from repro.verify import CrashPointConfig, VerificationError, run_crash_points


def quick_config(**overrides):
    defaults = dict(
        scheme="src",
        integrity_mode="toc",
        data_bytes=32 * 1024,
        metadata_cache_bytes=2 * 1024,
        ops=160,
        num_points=40,
        seed=2021,
        fault_every=0,
    )
    defaults.update(overrides)
    return CrashPointConfig(**defaults)


class TestCleanCrashPoints:
    @pytest.mark.parametrize("scheme", ["src", "sac"])
    @pytest.mark.parametrize("mode", ["toc", "bmt"])
    def test_clean_points_lose_nothing(self, scheme, mode):
        """A pure power cut — no faults — must recover every write: ADR
        drains the WPQ, data is write-through, counters reconstruct."""
        report = run_crash_points(
            quick_config(scheme=scheme, integrity_mode=mode)
        )
        assert report["ok"]
        assert report["schema"] == "verify/v1"
        assert report["kind"] == "crash_points"
        assert report["num_points"] == 40
        assert report["outcomes"]["reported_lost"] == 0
        assert report["outcomes"]["quarantined"] == 0
        assert report["silent_corruption"] == 0
        assert report["oracle_divergences"] == 0
        assert report["recovery_failures"] == 0
        assert report["outcomes"]["recovered"] > 0

    def test_deterministic_across_runs(self):
        config = quick_config(num_points=12)
        first = run_crash_points(config)
        second = run_crash_points(config)
        assert first == second

    def test_recover_twice(self):
        """Recovering an already-recovered image is idempotent."""
        report = run_crash_points(
            quick_config(num_points=12, recover_twice=True)
        )
        assert report["ok"]
        assert report["outcomes"]["reported_lost"] == 0


class TestNewSchemeCrashPoints:
    """Triad-NVM and Phoenix under the same trichotomy obligations."""

    @pytest.mark.parametrize("scheme", ["triad", "phoenix"])
    def test_clean_points_lose_nothing(self, scheme):
        """Systematic clean power cuts must recover every write under
        the scheme's own recovery procedure (triad regeneration above
        the persisted levels; phoenix top-down reseal)."""
        report = run_crash_points(quick_config(scheme=scheme))
        assert report["ok"]
        assert report["outcomes"]["reported_lost"] == 0
        assert report["outcomes"]["quarantined"] == 0
        assert report["silent_corruption"] == 0
        assert report["recovery_failures"] == 0
        assert report["outcomes"]["recovered"] > 0

    def test_scheme_pins_integrity_mode(self):
        """The scheme's pinned mode wins over the config knob, and the
        report records the mode the controller actually ran under."""
        config = quick_config(scheme="triad", integrity_mode="toc",
                              num_points=4)
        assert config.integrity_mode == "bmt"
        config = quick_config(scheme="phoenix", integrity_mode="bmt",
                              num_points=4)
        assert config.integrity_mode == "toc"

    @pytest.mark.parametrize("scheme", ["triad", "phoenix"])
    def test_faulted_points_never_lie(self, scheme):
        """Faults at the instant of the cut may cost data — but only as
        typed loss or quarantine, never silently-wrong plaintext."""
        report = run_crash_points(
            quick_config(scheme=scheme, num_points=24, fault_every=3,
                         faults_per_point=2)
        )
        assert report["ok"]
        assert report["silent_corruption"] == 0
        assert report["oracle_divergences"] == 0


class TestFaultedCrashPoints:
    def test_faulted_points_never_lie(self):
        """With faults landing before the cut, loss and quarantine are
        acceptable outcomes — silently-wrong plaintext never is."""
        report = run_crash_points(
            quick_config(num_points=30, fault_every=3, faults_per_point=2)
        )
        assert report["ok"]
        assert report["silent_corruption"] == 0
        assert report["oracle_divergences"] == 0

    def test_faulted_bmt_reports_loss_loudly(self):
        """BMT mode has no sidecar clones to repair from, so faulted
        points may lose data — every loss must be a typed error."""
        report = run_crash_points(
            quick_config(
                integrity_mode="bmt", num_points=30, fault_every=3,
                faults_per_point=2,
            )
        )
        assert report["ok"]
        assert report["silent_corruption"] == 0

    def test_silent_corruption_raises(self, monkeypatch):
        """Sanity-check the harness itself: force one audited block to
        come back wrong and the run must fail with the point named."""
        import repro.verify.crashpoints as cp

        original = cp._run_point

        def sabotaged(config, crash_op, point):
            result = original(config, crash_op, point)
            result.silent = [{"block": 0, "note": "sabotaged by test"}]
            return result

        monkeypatch.setattr(cp, "_run_point", sabotaged)
        with pytest.raises(VerificationError) as excinfo:
            run_crash_points(quick_config(num_points=3))
        assert excinfo.value.report["silent_corruption"] == 3
        assert not excinfo.value.report["ok"]


class TestConfigValidation:
    def test_rejects_bad_scheme(self):
        with pytest.raises(ValueError):
            quick_config(scheme="tofu")

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            quick_config(integrity_mode="merkle")

    def test_rejects_nonpositive_points(self):
        with pytest.raises(ValueError):
            quick_config(num_points=0)


class TestCliReplay:
    def test_replay_corpus_case(self, capsys, tmp_path):
        import json

        out = tmp_path / "replay.json"
        code = main([
            "verify", "--replay", "tests/corpus/fault_scrub_crash.json",
            "--out", str(out),
        ])
        assert code == 0
        assert "replay PASSED" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "verify/v1"
        assert payload["kind"] == "replay"
        assert payload["ok"]

"""Tests for Soteria: cloning policies, fault repair, shadow duplication."""

import numpy as np
import pytest

from repro.constants import MAX_CLONE_DEPTH
from repro.controller import (
    IntegrityError,
    RecoveryError,
    SecureMemoryController,
)
from repro.controller.policy import CloningPolicy
from repro.controller.shadow import KIND_NODE, ShadowRecord
from repro.core import (
    AggressiveCloning,
    RelaxedCloning,
    SoteriaShadowCodec,
    UniformCloning,
    make_controller,
)
from repro.recovery import RecoveryManager

KB = 1024


def make(scheme, seed=7, cache_kb=4, data_kb=256, **kwargs):
    return make_controller(
        scheme,
        data_kb * KB,
        metadata_cache_bytes=cache_kb * KB,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def fill(ctrl, n=500, seed=0, stride=37):
    rng = np.random.default_rng(seed)
    written = {}
    for i in range(n):
        bi = (i * stride) % ctrl.num_data_blocks
        data = bytes(int(x) for x in rng.integers(0, 256, 64))
        ctrl.write(bi, data)
        written[bi] = data
    return written


class TestCloningPolicies:
    def test_baseline_depth_one_everywhere(self):
        policy = CloningPolicy()
        assert all(d == 1 for d in policy.depth_map(9).values())

    def test_src_table2_row(self):
        policy = RelaxedCloning()
        assert policy.depth_map(9) == {level: 2 for level in range(1, 10)}

    def test_sac_table2_row(self):
        policy = AggressiveCloning()
        expected = {1: 2, 2: 2, 3: 3, 4: 3, 5: 4, 6: 4, 7: 4, 8: 4, 9: 5}
        assert policy.depth_map(9) == expected

    def test_sac_caps_at_max_depth(self):
        policy = AggressiveCloning()
        depths = policy.depth_map(12)
        assert depths[12] == MAX_CLONE_DEPTH
        assert max(depths.values()) <= MAX_CLONE_DEPTH

    def test_uniform_policy_validation(self):
        with pytest.raises(ValueError):
            UniformCloning(0)
        with pytest.raises(ValueError):
            UniformCloning(MAX_CLONE_DEPTH + 1)
        assert UniformCloning(3).depth(1, 5) == 3

    def test_level_bounds_checked(self):
        with pytest.raises(ValueError):
            RelaxedCloning().depth(0, 5)
        with pytest.raises(ValueError):
            AggressiveCloning().depth(6, 5)

    def test_make_controller_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_controller("turbo", 64 * KB)


class TestWpqAtomicityConstraint:
    def test_clone_depth_beyond_wpq_is_unbuildable(self):
        """Section 3.2.1's cap rationale: all copies commit atomically
        through the WPQ, so depth > capacity fails the moment such a
        node persists."""
        from repro.controller import SecureMemoryController
        from repro.memory import WpqFullError

        ctrl = SecureMemoryController(
            256 * KB,
            clone_policy=UniformCloning(5),
            metadata_cache_bytes=2 * KB,
            wpq_entries=4,
            functional_crypto=False,
        )
        with pytest.raises(WpqFullError):
            for i in range(3000):
                ctrl.write(i % ctrl.num_data_blocks, bytes(64))
            ctrl.flush()

    def test_max_depth_fits_minimum_wpq(self):
        """Depth 5 + the up-to-3 writes of a secure write fit the
        8-entry minimum WPQ — the exact arithmetic behind Table 2."""
        from repro.constants import DEFAULT_WPQ_ENTRIES, MAX_CLONE_DEPTH

        assert MAX_CLONE_DEPTH + 3 <= DEFAULT_WPQ_ENTRIES

    def test_sac_runs_on_minimum_wpq(self):
        ctrl = make("sac", cache_kb=1, data_kb=4096)
        assert ctrl.wpq.capacity == 8
        fill(ctrl, n=2000, stride=41)
        ctrl.flush()
        assert ctrl.verify_system() == []


class TestCloneWrites:
    def test_src_writes_one_clone_per_dirty_eviction(self):
        base = make("baseline")
        src = make("src")
        for c in (base, src):
            fill(c, n=800)
        base_w = base.stats.nvm_writes_by_kind
        src_w = src.stats.nvm_writes_by_kind
        assert base_w.get("clone", 0) == 0
        # One clone per counter/tree writeback (evictions + persists),
        # plus one per sidecar-MAC writeback — the sidecar region is
        # cloned at the counter level's depth.
        expected_clones = src_w["counter"] + src_w["tree"] + src_w["counter_mac"]
        assert src_w["clone"] == expected_clones

    def test_sac_writes_more_clones_than_src_only_for_upper_levels(self):
        src = make("src", cache_kb=1)
        sac = make("sac", cache_kb=1)
        for c in (src, sac):
            fill(c, n=3000, stride=61)
        assert (
            sac.stats.nvm_writes_by_kind["clone"]
            >= src.stats.nvm_writes_by_kind["clone"]
        )

    def test_clone_region_contains_copies_after_flush(self):
        src = make("src")
        fill(src, n=300)
        src.flush()
        amap = src.amap
        copied = 0
        for index in range(amap.level_sizes[0]):
            original = amap.node_addr(1, index)
            if not src.nvm.is_touched(original):
                continue
            clone = amap.clone_addr(1, index, 1)
            assert src.nvm.is_touched(clone)
            assert src.nvm.read_block(clone) == src.nvm.read_block(original)
            copied += 1
        assert copied > 0

    def test_data_path_results_identical_across_schemes(self):
        written = {}
        results = {}
        for scheme in ("baseline", "src", "sac"):
            ctrl = make(scheme, seed=5)
            written = fill(ctrl, n=400, seed=9)
            ctrl.flush()
            results[scheme] = {bi: ctrl.read(bi).data for bi in written}
        assert results["baseline"] == results["src"] == results["sac"]


class TestFaultRepair:
    """Figure 9: clone-based repair of corrupted metadata."""

    def _corrupt_written_counter(self, ctrl):
        for index in range(ctrl.amap.level_sizes[0]):
            addr = ctrl.amap.node_addr(1, index)
            if ctrl.nvm.is_touched(addr):
                ctrl.nvm.flip_bits(addr, [9])
                return index
        raise AssertionError("no written counter block found")

    def test_baseline_corrupt_counter_is_fatal(self):
        ctrl = make("baseline")
        fill(ctrl, n=400)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        index = self._corrupt_written_counter(ctrl)
        with pytest.raises(IntegrityError):
            ctrl.read(index * 64)

    def test_src_repairs_corrupt_counter_from_clone(self):
        ctrl = make("src")
        written = fill(ctrl, n=400)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        index = self._corrupt_written_counter(ctrl)
        target = next(bi for bi in written if bi // 64 == index)
        assert ctrl.read(target).data == written[target]
        assert ctrl.stats.clone_repairs == 1
        # Purification rewrote the original: a second cold read is clean.
        ctrl.metadata_cache.flush_all()
        ctrl.wpq.drain_all()
        assert ctrl.read(target).data == written[target]
        assert ctrl.stats.clone_repairs == 1

    def test_src_repairs_corrupt_tree_node(self):
        ctrl = make("src", cache_kb=1)
        written = fill(ctrl, n=3000, stride=31)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        target_index = None
        for i in range(ctrl.amap.level_sizes[1]):
            addr = ctrl.amap.node_addr(2, i)
            if ctrl.nvm.is_touched(addr):
                ctrl.nvm.flip_bits(addr, [3])
                target_index = i
                break
        assert target_index is not None
        covered = ctrl.amap.data_blocks_covered(2, target_index)
        victim = next(bi for bi in written if bi in covered)
        assert ctrl.read(victim).data == written[victim]
        assert ctrl.stats.clone_repairs >= 1

    def test_poisoned_original_repaired_from_clone(self):
        ctrl = make("src")
        written = fill(ctrl, n=300)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        index = next(
            i
            for i in range(ctrl.amap.level_sizes[0])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        addr = ctrl.amap.node_addr(1, index)
        ctrl.nvm.poison_block(addr)
        target = next(bi for bi in written if bi // 64 == index)
        assert ctrl.read(target).data == written[target]
        assert not ctrl.nvm.is_poisoned(addr)  # purified

    def test_all_copies_corrupt_is_fatal_even_with_src(self):
        ctrl = make("src")
        fill(ctrl, n=300)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        index = self._corrupt_written_counter(ctrl)
        ctrl.nvm.flip_bits(ctrl.amap.clone_addr(1, index, 1), [9])
        with pytest.raises(IntegrityError):
            ctrl.read(index * 64)

    def test_sac_survives_more_copies_lost_on_upper_levels(self):
        # 4MB of data -> 4 tree levels, so level 3 (SAC depth 3) exists.
        ctrl = make("sac", cache_kb=1, data_kb=4096)
        written = fill(ctrl, n=3000, stride=31)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        # Find a written level-3 node (SAC depth 3 there).
        target_index = None
        for i in range(ctrl.amap.level_sizes[2]):
            addr = ctrl.amap.node_addr(3, i)
            if ctrl.nvm.is_touched(addr):
                target_index = i
                break
        assert target_index is not None
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(3, target_index), [1])
        ctrl.nvm.flip_bits(ctrl.amap.clone_addr(3, target_index, 1), [2])
        covered = ctrl.amap.data_blocks_covered(3, target_index)
        victim = next(bi for bi in written if bi in covered)
        assert ctrl.read(victim).data == written[victim]


class TestSoteriaShadowCodec:
    def test_encode_is_two_identical_halves(self):
        codec = SoteriaShadowCodec()
        record = ShadowRecord(
            address=0x1000, kind=KIND_NODE, lsbs=(1, 2, 3, 4, 5, 6, 7, 8),
            mac=b"mmmmmmmm",
        )
        raw = codec.encode(record)
        assert len(raw) == 64
        assert raw[:32] == raw[32:]

    def test_decode_roundtrip(self):
        codec = SoteriaShadowCodec()
        record = ShadowRecord(
            address=0x40, kind=KIND_NODE,
            lsbs=(65535, 0, 1, 2, 3, 4, 5, 6), mac=b"12345678",
        )
        for candidate in codec.decode_candidates(codec.encode(record)):
            assert candidate == record

    def test_lsbs_masked_to_16_bits(self):
        codec = SoteriaShadowCodec()
        record = ShadowRecord(
            address=0x40, kind=KIND_NODE,
            lsbs=(0x12345,) * 8, mac=b"12345678",
        )
        decoded = codec.decode_candidates(codec.encode(record))[0]
        assert decoded.lsbs == (0x2345,) * 8

    def test_corrupt_half_still_decodable(self):
        codec = SoteriaShadowCodec()
        record = ShadowRecord(
            address=0x80, kind=KIND_NODE, lsbs=(9,) * 8, mac=b"abcdefgh",
        )
        raw = bytearray(codec.encode(record))
        raw[5] ^= 0xFF  # kill the first sub-entry
        candidates = codec.decode_candidates(bytes(raw))
        assert candidates[1] == record


class TestShadowDuplicationRecovery:
    @staticmethod
    def _live_entry_addr(ctrl, image):
        """Address of a shadow slot holding a live (non-tombstone)
        record — corrupting a tombstone is repairable by design."""
        codec = ctrl.shadow_codec
        for slot in range(ctrl.amap.shadow_entries):
            addr = ctrl.amap.shadow_entry_addr(slot)
            if not image.nvm.is_touched(addr):
                continue
            raw = image.nvm.read_block(addr)
            if any(not r.is_empty for r in codec.decode_candidates(raw)):
                return addr
        raise AssertionError("no live shadow entry found")

    def _crash_with_corrupt_entry(self, scheme, bit):
        ctrl = make(scheme, seed=33)
        rng = np.random.default_rng(44)
        for _ in range(800):
            bi = int(rng.integers(0, ctrl.num_data_blocks))
            ctrl.write(bi, bytes(int(x) for x in rng.integers(0, 256, 64)))
        image = ctrl.crash()
        image.nvm.flip_bits(self._live_entry_addr(ctrl, image), [bit])
        return image

    # Bit positions chosen to hit fields that matter: byte 56 is the
    # MAC in the Anubis layout; byte 24 is the MAC of Soteria's first
    # sub-entry (addr 8 + lsbs 16 + mac 8 per 32-byte half).
    def test_baseline_corrupt_shadow_entry_fails(self):
        image = self._crash_with_corrupt_entry("baseline", bit=56 * 8 + 3)
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

    def test_soteria_corrupt_shadow_entry_recovers(self):
        image = self._crash_with_corrupt_entry("src", bit=24 * 8 + 3)
        recovered, report = RecoveryManager(image).recover()
        assert report.repaired_entries >= 1
        assert recovered.verify_system() == []

    def test_soteria_corrupt_second_half_recovers(self):
        image = self._crash_with_corrupt_entry("src", bit=(32 + 24) * 8 + 5)
        recovered, report = RecoveryManager(image).recover()
        assert report.repaired_entries >= 1
        assert recovered.verify_system() == []

    def test_soteria_both_halves_corrupt_fails(self):
        image = self._crash_with_corrupt_entry("src", bit=24 * 8 + 5)
        # Also corrupt the duplicate sub-entry's MAC in the same block.
        ctrl_map_probe = make("src", seed=33)
        target = self._live_entry_addr(ctrl_map_probe, image)
        image.nvm.flip_bits(target, [(32 + 24) * 8 + 5])
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

    def test_full_crash_recovery_src_and_sac(self):
        for scheme in ("src", "sac"):
            ctrl = make(scheme, seed=55)
            rng = np.random.default_rng(66)
            expect = {}
            for _ in range(1200):
                bi = int(rng.integers(0, ctrl.num_data_blocks))
                data = bytes(int(x) for x in rng.integers(0, 256, 64))
                ctrl.write(bi, data)
                expect[bi] = data
            recovered, __ = RecoveryManager(ctrl.crash()).recover()
            for bi, data in expect.items():
                assert recovered.read(bi).data == data

"""Unit tests for controller statistics and simulation results."""

import pytest

from repro.controller.stats import ControllerStats, OpCost
from repro.sim.stats import SimResult


class TestOpCost:
    def test_add(self):
        a = OpCost(blocking_reads=2, posted_writes=3)
        b = OpCost(blocking_reads=1, posted_writes=4)
        a.add(b)
        assert a.blocking_reads == 3
        assert a.posted_writes == 7

    def test_defaults(self):
        cost = OpCost()
        assert cost.blocking_reads == 0
        assert cost.posted_writes == 0


class TestControllerStats:
    def test_traffic_totals(self):
        stats = ControllerStats()
        stats.record_read("data", 3)
        stats.record_read("counter")
        stats.record_write("shadow", 2)
        assert stats.total_nvm_reads == 4
        assert stats.total_nvm_writes == 2
        assert stats.nvm_reads_by_kind["data"] == 3

    def test_eviction_fraction_excludes_mac_level(self):
        stats = ControllerStats()
        stats.evictions_by_level[0] = 100  # data-MAC blocks
        stats.evictions_by_level[1] = 30
        stats.evictions_by_level[2] = 10
        fractions = stats.eviction_fractions()
        assert set(fractions) == {1, 2}
        assert fractions[1] == pytest.approx(0.75)

    def test_eviction_fractions_empty(self):
        assert ControllerStats().eviction_fractions() == {}

    def test_evictions_per_request(self):
        stats = ControllerStats()
        stats.data_reads = 60
        stats.data_writes = 40
        stats.evictions_by_level[1] = 5
        stats.evictions_by_level[0] = 500  # must not count
        assert stats.evictions_per_request() == pytest.approx(0.05)

    def test_evictions_per_request_no_traffic(self):
        assert ControllerStats().evictions_per_request() == 0.0


class TestSimResult:
    def _result(self, **overrides):
        base = dict(
            workload="w",
            scheme="baseline",
            instructions=1000,
            memory_requests=100,
            cpu_cycles=2000.0,
            channel_busy_ns=500.0,
            exec_time_ns=1000.0,
            nvm_reads=50,
            nvm_writes=80,
        )
        base.update(overrides)
        return SimResult(**base)

    def test_ipc(self):
        assert self._result().ipc == pytest.approx(0.5)
        assert self._result(cpu_cycles=0.0).ipc == 0.0

    def test_slowdown(self):
        base = self._result()
        slower = self._result(exec_time_ns=1100.0)
        assert slower.slowdown_vs(base) == pytest.approx(0.10)
        assert base.slowdown_vs(self._result(exec_time_ns=0.0)) == 0.0

    def test_write_overhead(self):
        base = self._result()
        heavier = self._result(nvm_writes=84)
        assert heavier.write_overhead_vs(base) == pytest.approx(0.05)
        assert base.write_overhead_vs(self._result(nvm_writes=0)) == 0.0

    def test_evictions_per_request(self):
        result = self._result(evictions_by_level={0: 99, 1: 3, 2: 1})
        assert result.evictions_per_request == pytest.approx(0.04)
        empty = self._result(memory_requests=0)
        assert empty.evictions_per_request == 0.0

"""Tests for the baseline secure memory controller datapath."""

import numpy as np
import pytest

from repro.controller import (
    DataPoisonedError,
    IntegrityError,
    SecureMemoryController,
)

KB = 1024


@pytest.fixture
def ctrl():
    return SecureMemoryController(
        256 * KB, metadata_cache_bytes=4 * KB, rng=np.random.default_rng(7)
    )


def fill(ctrl, n=64, seed=0, stride=1):
    rng = np.random.default_rng(seed)
    written = {}
    for i in range(n):
        bi = (i * stride) % ctrl.num_data_blocks
        data = bytes(int(x) for x in rng.integers(0, 256, 64))
        ctrl.write(bi, data)
        written[bi] = data
    return written


class TestReadWrite:
    def test_roundtrip(self, ctrl):
        data = bytes(range(64))
        ctrl.write(0, data)
        assert ctrl.read(0).data == data

    def test_unwritten_block_reads_zero(self, ctrl):
        assert ctrl.read(10).data == bytes(64)

    def test_overwrite(self, ctrl):
        ctrl.write(3, b"\x01" * 64)
        ctrl.write(3, b"\x02" * 64)
        assert ctrl.read(3).data == b"\x02" * 64

    def test_many_blocks_roundtrip(self, ctrl):
        written = fill(ctrl, n=300, stride=17)
        for bi, data in written.items():
            assert ctrl.read(bi).data == data

    def test_roundtrip_survives_flush(self, ctrl):
        written = fill(ctrl, n=200, stride=11)
        ctrl.flush()
        for bi, data in written.items():
            assert ctrl.read(bi).data == data

    def test_data_encrypted_at_rest(self, ctrl):
        data = b"\xab" * 64
        ctrl.write(0, data)
        ctrl.flush()
        stored = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        assert stored != data

    def test_fast_mode_stores_plaintext_but_same_traffic(self):
        fast = SecureMemoryController(
            256 * KB,
            metadata_cache_bytes=4 * KB,
            functional_crypto=False,
            rng=np.random.default_rng(1),
        )
        slow = SecureMemoryController(
            256 * KB,
            metadata_cache_bytes=4 * KB,
            functional_crypto=True,
            rng=np.random.default_rng(1),
        )
        for c in (fast, slow):
            for i in range(100):
                c.write(i * 3 % c.num_data_blocks, bytes([i % 256]) * 64)
                c.read(i * 7 % c.num_data_blocks)
        assert fast.stats.nvm_writes_by_kind == slow.stats.nvm_writes_by_kind
        assert fast.stats.nvm_reads_by_kind == slow.stats.nvm_reads_by_kind

    def test_write_validates_length(self, ctrl):
        with pytest.raises(ValueError):
            ctrl.write(0, b"short")

    def test_cost_accounting(self, ctrl):
        cost = ctrl.write(0, bytes(64))
        # cipher + data MAC + shadow log: at least three posted writes.
        assert cost.posted_writes >= 3
        result = ctrl.read(0)
        assert result.cost.blocking_reads >= 0  # WPQ forwarding may hide it


class TestWriteTraffic:
    def test_baseline_three_writes_per_data_write(self, ctrl):
        """Paper Section 3.2.1: a secure recoverable write generates up
        to three writes — cipher, data MAC, shadow log."""
        fill(ctrl, n=200, stride=7)
        w = ctrl.stats.nvm_writes_by_kind
        assert w["data"] == 200
        assert w["mac"] == 200
        assert w["shadow"] >= 200  # plus eviction bumps and tombstones
        assert w.get("clone", 0) == 0  # baseline never clones

    def test_page_reencryption_on_minor_overflow(self, ctrl):
        # 127 increments fit in a 7-bit minor; the 128th overflows.
        for _ in range(127):
            ctrl.write(0, bytes(64))
        assert ctrl.stats.page_reencryptions == 0
        ctrl.write(0, bytes(64))
        assert ctrl.stats.page_reencryptions == 1
        assert ctrl.read(0).data == bytes(64)

    def test_reencrypted_page_neighbors_still_readable(self, ctrl):
        ctrl.write(1, b"\x11" * 64)  # same page as block 0
        for _ in range(128):
            ctrl.write(0, bytes(64))
        assert ctrl.stats.page_reencryptions == 1
        assert ctrl.read(1).data == b"\x11" * 64

    def test_osiris_persist_bounds_counter_staleness(self, ctrl):
        for _ in range(ctrl.osiris_limit):
            ctrl.write(0, bytes(64))
        assert ctrl.stats.osiris_persists == 1
        # After the persist the NVM copy is current: its minor equals
        # the cached minor.
        from repro.counters import SplitCounterBlock

        ctrl.wpq.drain_all()
        raw = ctrl.nvm.read_block(ctrl.amap.node_addr(1, 0))
        stored = SplitCounterBlock.from_bytes(raw)
        assert stored.minors[0] == ctrl.osiris_limit


class TestEvictionBehavior:
    def test_evictions_tracked_by_level(self, ctrl):
        fill(ctrl, n=3000, stride=97)
        by_level = ctrl.stats.tree_evictions_by_level
        assert by_level.get(1, 0) > 0  # counter evictions dominate
        fractions = ctrl.stats.eviction_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # Lazy update: leaf evictions outnumber any upper level.
        top = max(by_level)
        if top > 1:
            assert by_level[1] >= by_level[top]

    def test_evictions_per_request_small(self, ctrl):
        fill(ctrl, n=2000, stride=61)
        rate = ctrl.stats.evictions_per_request()
        # The 4kB test cache thrashes far more than the paper's 512kB
        # one; just check the metric is sane and nonzero.
        assert 0 < rate < 2.0

    def test_lazy_update_no_tree_writes_without_eviction(self):
        # Huge metadata cache: nothing ever evicts, so no tree writes.
        big = SecureMemoryController(
            64 * KB, metadata_cache_bytes=64 * KB, rng=np.random.default_rng(0)
        )
        fill(big, n=200, stride=3)
        assert big.stats.nvm_writes_by_kind.get("tree", 0) == 0
        assert big.stats.nvm_writes_by_kind.get("counter", 0) == 0


class TestIntegrityDetection:
    def test_tampered_data_detected(self, ctrl):
        ctrl.write(0, b"\x42" * 64)
        ctrl.flush()
        addr = ctrl.amap.data_addr(0)
        ctrl.nvm.flip_bits(addr, [0])
        with pytest.raises(IntegrityError):
            ctrl.read(0)
        assert ctrl.stats.integrity_failures == 1

    def test_poisoned_data_raises_data_error(self, ctrl):
        ctrl.write(0, bytes(64))
        ctrl.flush()
        ctrl.nvm.poison_block(ctrl.amap.data_addr(0))
        with pytest.raises(DataPoisonedError):
            ctrl.read(0)

    def test_corrupt_counter_block_detected_baseline(self, ctrl):
        written = fill(ctrl, n=500, stride=37)
        ctrl.flush()
        addr = ctrl.amap.node_addr(1, 0)
        assert ctrl.nvm.is_touched(addr)
        ctrl.nvm.flip_bits(addr, [5])
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_corrupt_tree_node_makes_children_unverifiable(self):
        ctrl = SecureMemoryController(
            256 * KB, metadata_cache_bytes=1 * KB, rng=np.random.default_rng(9)
        )
        fill(ctrl, n=2000, stride=31)
        ctrl.flush()
        # Corrupt a level-2 node that was actually written.
        target = None
        for i in range(ctrl.amap.level_sizes[1]):
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(2, i)):
                target = i
                break
        assert target is not None
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(2, target), [3])
        # Evict everything so the fetch goes through NVM again.
        ctrl2_image = ctrl.crash()
        # A fresh controller sharing the NVM must fail on that subtree.
        from repro.controller import SecureMemoryController as C

        fresh = C(
            256 * KB,
            nvm=ctrl2_image.nvm,
            metadata_cache_bytes=1 * KB,
            trusted=ctrl2_image.trusted,
        )
        child_counter = target * 8  # first child counter under the node
        covered = ctrl.amap.data_blocks_covered(2, target)
        with pytest.raises(IntegrityError):
            fresh.read(covered[0])

    def test_replayed_counter_block_detected(self, ctrl):
        """Capture an old (counter block, sidecar MAC) pair, advance the
        system, then replay both — the parent counter has moved on."""
        ctrl.write(0, b"\x01" * 64)
        ctrl.flush()
        counter_addr = ctrl.amap.node_addr(1, 0)
        sidecar_addr = ctrl.amap.counter_mac_addr(0)
        old_counter = ctrl.nvm.read_block(counter_addr)
        old_sidecar = ctrl.nvm.read_block(sidecar_addr)
        old_data = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        old_mac = ctrl.nvm.read_block(ctrl.amap.mac_addr(0))
        # Advance: write again and force eviction (flush reseals).
        ctrl.write(0, b"\x02" * 64)
        ctrl.flush()
        # Replay everything the attacker can capture off-chip.
        ctrl.nvm.write_block(counter_addr, old_counter)
        ctrl.nvm.write_block(sidecar_addr, old_sidecar)
        ctrl.nvm.write_block(ctrl.amap.data_addr(0), old_data)
        ctrl.nvm.write_block(ctrl.amap.mac_addr(0), old_mac)
        ctrl.metadata_cache.flush_all()  # drop trusted cached copies
        with pytest.raises(IntegrityError):
            ctrl.read(0)


class TestVictimQueue:
    def test_no_divergence_under_eviction_storm(self):
        """Regression: persisting a node used to allow a nested
        eviction to re-fetch that node's stale NVM copy, forking two
        divergent versions (and eventually an IntegrityError on a
        perfectly healthy system).  A long random write storm over a
        tiny metadata cache exercises exactly that interleaving."""
        ctrl = SecureMemoryController(
            1024 * KB, metadata_cache_bytes=4 * KB,
            rng=np.random.default_rng(7),
        )
        ctrl.write(0, b"x".ljust(64, b"\x00"))
        ctrl.read(0)
        ctrl.flush()
        rng = np.random.default_rng(1)
        for _ in range(4000):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            ctrl.write(block, bytes(int(x) for x in rng.integers(0, 256, 64)))
        assert ctrl.verify_system() == []

    def test_victim_queue_empty_between_operations(self):
        ctrl = SecureMemoryController(
            256 * KB, metadata_cache_bytes=2 * KB,
            rng=np.random.default_rng(3),
        )
        rng = np.random.default_rng(5)
        for _ in range(500):
            ctrl.write(int(rng.integers(0, ctrl.num_data_blocks)), bytes(64))
            assert not ctrl._victims

    def test_reclaimed_victim_stays_recoverable(self):
        """A dirty victim pulled back from the queue must keep a live
        shadow entry: crash right after the storm and recover."""
        from repro.recovery import RecoveryManager

        ctrl = SecureMemoryController(
            256 * KB, metadata_cache_bytes=2 * KB,
            rng=np.random.default_rng(9),
        )
        rng = np.random.default_rng(10)
        expect = {}
        for _ in range(2000):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(block, data)
            expect[block] = data
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        for block, data in expect.items():
            assert recovered.read(block).data == data


class TestVerifySystem:
    def test_clean_system_verifies(self, ctrl):
        fill(ctrl, n=100, stride=13)
        ctrl.flush()
        assert ctrl.verify_system() == []

    def test_verify_reports_corruption(self, ctrl):
        fill(ctrl, n=100, stride=13)
        ctrl.flush()
        ctrl.nvm.flip_bits(ctrl.amap.data_addr(0), [1])
        failures = ctrl.verify_system()
        assert len(failures) >= 1


class TestRekey:
    def test_data_survives_rekey(self, ctrl):
        written = fill(ctrl, n=300, stride=23)
        ctrl.rekey(rng=np.random.default_rng(99))
        for bi, data in written.items():
            assert ctrl.read(bi).data == data

    def test_ciphertext_changes_under_new_key(self, ctrl):
        ctrl.write(0, b"\x5a" * 64)
        ctrl.flush()
        before = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        ctrl.rekey(rng=np.random.default_rng(98))
        after = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        assert before != after
        assert ctrl.read(0).data == b"\x5a" * 64

    def test_counters_reset(self, ctrl):
        from repro.counters import SplitCounterBlock

        for _ in range(20):
            ctrl.write(0, bytes(64))
        ctrl.rekey(rng=np.random.default_rng(97))
        raw = ctrl.nvm.read_block(ctrl.amap.node_addr(1, 0))
        stored = SplitCounterBlock.from_bytes(raw)
        # One rewrite after the reset: minor counter is 1, not 21.
        assert stored.minors[0] <= ctrl.osiris_limit

    def test_old_captured_data_invalid_after_rekey(self, ctrl):
        """An attacker's pre-rekey snapshot cannot be replayed: the new
        MAC key rejects it."""
        ctrl.write(0, b"\x01" * 64)
        ctrl.flush()
        old_data = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        old_mac = ctrl.nvm.read_block(ctrl.amap.mac_addr(0))
        ctrl.rekey(rng=np.random.default_rng(96))
        ctrl.nvm.write_block(ctrl.amap.data_addr(0), old_data)
        ctrl.nvm.write_block(ctrl.amap.mac_addr(0), old_mac)
        ctrl.metadata_cache.flush_all()
        ctrl.wpq.drain_all()
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_rekey_cost_scales_with_footprint(self, ctrl):
        fill(ctrl, n=200, stride=17)
        cost = ctrl.rekey(rng=np.random.default_rng(95))
        # Every written block is read once and rewritten once, plus
        # metadata traffic: a whole-memory operation.
        assert cost.posted_writes >= 200 * 2

    def test_crash_recovery_works_after_rekey(self, ctrl):
        from repro.recovery import RecoveryManager

        written = fill(ctrl, n=150, stride=29)
        ctrl.rekey(rng=np.random.default_rng(94))
        ctrl.write(0, b"\x77" * 64)
        written[0] = b"\x77" * 64
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        for bi, data in written.items():
            assert recovered.read(bi).data == data


class TestConstruction:
    def test_nvm_capacity_validated(self):
        from repro.memory import NvmDevice

        small = NvmDevice(capacity_bytes=64 * KB)
        with pytest.raises(ValueError):
            SecureMemoryController(256 * KB, nvm=small)

    def test_shadow_entries_match_cache_slots(self, ctrl):
        assert ctrl.amap.shadow_entries == ctrl.metadata_cache.num_slots

    def test_trusted_state_reuse_preserves_keys(self, ctrl):
        ctrl.write(0, b"\x07" * 64)
        ctrl.flush()  # clean shutdown: no recovery needed
        image = ctrl.crash()
        clone = SecureMemoryController(
            256 * KB,
            nvm=image.nvm,
            metadata_cache_bytes=4 * KB,
            trusted=image.trusted,
        )
        assert clone.read(0).data == b"\x07" * 64

"""Module-level cell runners for the fleet and store tests.

These live in their own importable module (not inside a test file)
because fleet workers resolve the campaign runner from its
``module:qualname`` import path: the ``repro fleet worker`` subprocess
a test spawns must import the *same* runner under the *same* module
name as the in-process test did, or the content-addressed cell keys
would disagree and the fleet would never converge.  Subprocess workers
are launched with the repo root on ``sys.path`` (it is the CWD) so
``tests.fleet_helpers`` resolves identically everywhere.

Every runner is a pure function of its cell (the store/queue
determinism contract); the "tracked" variants additionally append one
line per *execution* to a log file named by the cell, which is how the
tests distinguish "served from the store / adopted from a poison
record" from "silently re-executed".
"""

import os
import time


def _touch_execution(log_dir, tag):
    """Append one line per runner start: the execution audit trail."""
    with open(os.path.join(log_dir, f"exec-{tag}.log"), "a") as fh:
        fh.write(f"{os.getpid()}\n")


def square(cell):
    """``("sq", value)`` -> deterministic arithmetic result."""
    _, value = cell
    return {"value": value, "square": value * value}


def tracked_square(cell):
    """``("tracked", value, log_dir)``: square, with an execution log."""
    _, value, log_dir = cell
    _touch_execution(log_dir, value)
    return {"value": value, "square": value * value}


def fail_negative(cell):
    """``("failneg", value, log_dir)``: raises for negative values.

    The raised ``ValueError`` classifies as ``retryable``, so a cell
    that always fails exhausts its retry budget and gets poisoned.
    """
    _, value, log_dir = cell
    _touch_execution(log_dir, value)
    if value < 0:
        raise ValueError(f"cell {value} is marked to fail")
    return {"value": value, "square": value * value}


def block_while_file_exists(cell):
    """``("block", value, block_path)``: stall while the file exists.

    Lets a test park a worker *inside* a cell (holding its lease) for
    as long as the sentinel file is present — the setup for killing a
    worker mid-lease.  The 120s ceiling keeps a leaked worker from
    outliving the test run.
    """
    _, value, block_path = cell
    deadline = time.time() + 120.0
    while os.path.exists(block_path) and time.time() < deadline:
        time.sleep(0.05)
    return {"value": value, "square": value * value}

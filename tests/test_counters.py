"""Tests for split-counter blocks and ToC node counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CACHELINE_BYTES, MINOR_COUNTER_BITS
from repro.counters import OverflowEvent, SplitCounterBlock, TocNode

MINOR_MAX = (1 << MINOR_COUNTER_BITS) - 1


class TestSplitCounterBlock:
    def test_initial_counters_zero(self):
        blk = SplitCounterBlock()
        assert all(blk.effective_counter(i) == 0 for i in range(64))

    def test_increment_bumps_only_target_slot(self):
        blk = SplitCounterBlock()
        assert blk.increment(3) is None
        assert blk.effective_counter(3) == 1
        assert blk.effective_counter(2) == 0

    def test_minor_overflow_triggers_event(self):
        blk = SplitCounterBlock()
        for _ in range(MINOR_MAX):
            assert blk.increment(0) is None
        event = blk.increment(0)
        assert isinstance(event, OverflowEvent)
        assert event.old_major == 0 and event.new_major == 1
        assert event.old_minors[0] == MINOR_MAX
        assert blk.major == 1
        assert all(m == 0 for m in blk.minors)

    def test_effective_counter_monotonic_across_overflow(self):
        blk = SplitCounterBlock()
        seen = [blk.effective_counter(0)]
        for _ in range(MINOR_MAX + 5):
            blk.increment(0)
            seen.append(blk.effective_counter(0))
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_serialization_roundtrip(self):
        blk = SplitCounterBlock(major=123456, minors=[i % 128 for i in range(64)])
        raw = blk.to_bytes()
        assert len(raw) == CACHELINE_BYTES
        assert SplitCounterBlock.from_bytes(raw) == blk

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            SplitCounterBlock.from_bytes(b"\x00" * 63)

    def test_copy_is_independent(self):
        blk = SplitCounterBlock()
        dup = blk.copy()
        blk.increment(0)
        assert dup.effective_counter(0) == 0

    def test_slot_bounds_checked(self):
        blk = SplitCounterBlock()
        with pytest.raises(IndexError):
            blk.increment(64)
        with pytest.raises(IndexError):
            blk.effective_counter(-1)

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            SplitCounterBlock(minors=[0] * 63)
        with pytest.raises(ValueError):
            SplitCounterBlock(minors=[MINOR_MAX + 1] + [0] * 63)
        with pytest.raises(ValueError):
            SplitCounterBlock(major=-1)

    @settings(max_examples=50, deadline=None)
    @given(
        major=st.integers(min_value=0, max_value=2**64 - 1),
        minors=st.lists(
            st.integers(min_value=0, max_value=MINOR_MAX),
            min_size=64,
            max_size=64,
        ),
    )
    def test_property_serialization_roundtrip(self, major, minors):
        blk = SplitCounterBlock(major=major, minors=minors)
        assert SplitCounterBlock.from_bytes(blk.to_bytes()) == blk

    @settings(max_examples=30, deadline=None)
    @given(slots=st.lists(st.integers(min_value=0, max_value=63), max_size=300))
    def test_property_no_two_slots_share_effective_counter_history(self, slots):
        """(slot, effective counter) pairs never repeat under increments —
        the uniqueness that prevents OTP reuse."""
        blk = SplitCounterBlock()
        used = {(s, blk.effective_counter(s)) for s in range(64)}
        for s in slots:
            event = blk.increment(s)
            if event is not None:
                # Page re-encrypted: all pads regenerated under new major.
                used = set()
            pair = (s, blk.effective_counter(s))
            assert pair not in used
            used.add(pair)


class TestTocNode:
    def test_initial_state(self):
        node = TocNode()
        assert node.counters == [0] * 8
        assert node.mac == b"\x00" * 8

    def test_increment_returns_new_value(self):
        node = TocNode()
        assert node.increment(2) == 1
        assert node.increment(2) == 2
        assert node.counter(2) == 2
        assert node.counter(0) == 0

    def test_serialization_roundtrip(self):
        node = TocNode(counters=[1, 2, 3, 4, 5, 6, 7, 8], mac=b"12345678")
        raw = node.to_bytes()
        assert len(raw) == CACHELINE_BYTES
        assert TocNode.from_bytes(raw) == node

    def test_counters_bytes_excludes_mac(self):
        node = TocNode(counters=[9] * 8, mac=b"AAAAAAAA")
        other = TocNode(counters=[9] * 8, mac=b"BBBBBBBB")
        assert node.counters_bytes() == other.counters_bytes()
        assert node.to_bytes() != other.to_bytes()

    def test_bounds_and_validation(self):
        node = TocNode()
        with pytest.raises(IndexError):
            node.increment(8)
        with pytest.raises(ValueError):
            TocNode(counters=[0] * 7)
        with pytest.raises(ValueError):
            TocNode(mac=b"short")
        with pytest.raises(ValueError):
            TocNode(counters=[1 << 56] + [0] * 7)

    def test_copy_is_independent(self):
        node = TocNode()
        dup = node.copy()
        node.increment(0)
        assert dup.counter(0) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        counters=st.lists(
            st.integers(min_value=0, max_value=(1 << 56) - 1),
            min_size=8,
            max_size=8,
        ),
        mac=st.binary(min_size=8, max_size=8),
    )
    def test_property_serialization_roundtrip(self, counters, mac):
        node = TocNode(counters=counters, mac=mac)
        assert TocNode.from_bytes(node.to_bytes()) == node

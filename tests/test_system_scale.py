"""Tests for fleet-scale reliability projections."""

import pytest

from repro.analysis import (
    compare_fleet,
    max_protected_nodes,
    node_loss_probability,
    project_fleet,
)

TB = 1 << 40
#: Per-block uncorrectability in the low-FIT regime (FIT ~5), where the
#: scheme contrast is starkest: a 1TB tree has ~3e8 metadata blocks, so
#: the baseline already expects ~30 lost nodes per memory while
#: Soteria's squared probabilities stay negligible.
P = 1e-7


class TestNodeLossProbability:
    def test_baseline_much_higher_than_soteria(self):
        base = node_loss_probability(P, TB, "baseline")
        src = node_loss_probability(P, TB, "src")
        sac = node_loss_probability(P, TB, "sac")
        assert base > src >= sac
        assert base / src > 1e4

    def test_zero_probability(self):
        assert node_loss_probability(0.0, TB, "baseline") == 0.0

    def test_bounded(self):
        assert 0 <= node_loss_probability(0.5, TB, "baseline") <= 1

    def test_p_multi_override(self):
        independent = node_loss_probability(P, TB, "src")
        correlated = node_loss_probability(
            P, TB, "src", p_multi_due={1: P, 2: P / 2, 3: P / 2, 4: P / 2, 5: P / 2}
        )
        assert correlated > independent


class TestProjectFleet:
    def test_projection_fields(self):
        proj = project_fleet(P, "baseline", nodes=1000)
        assert proj.nodes == 1000
        assert proj.fleet_bytes == 1000 * TB
        assert proj.expected_unverifiable_bytes > 0
        assert 0 < proj.p_any_loss <= 1

    def test_fleet_loss_scales_with_nodes(self):
        small = project_fleet(P, "src", nodes=100)
        large = project_fleet(P, "src", nodes=10_000)
        ratio = (
            large.expected_unverifiable_bytes
            / small.expected_unverifiable_bytes
        )
        assert ratio == pytest.approx(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_fleet(P, "baseline", nodes=0)

    def test_compare_fleet_ordering(self):
        fleet = compare_fleet(P, nodes=20_000)
        assert (
            fleet["baseline"].p_any_loss
            > fleet["src"].p_any_loss
            >= fleet["sac"].p_any_loss
        )
        # At this rate the baseline fleet essentially certainly loses
        # something, while Soteria fleets stay quiet.
        assert fleet["baseline"].p_any_loss > 0.99
        assert fleet["src"].p_any_loss < 0.1
        assert fleet["sac"].p_any_loss < 0.1


class TestMaxProtectedNodes:
    def test_soteria_protects_vastly_larger_fleets(self):
        base = max_protected_nodes(P, "baseline")
        src = max_protected_nodes(P, "src")
        assert src / base > 1e4

    def test_infinite_when_no_errors(self):
        assert max_protected_nodes(0.0, "sac") == float("inf")

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            max_protected_nodes(P, "src", loss_budget=0)
        with pytest.raises(ValueError):
            max_protected_nodes(P, "src", loss_budget=1)

    def test_budget_monotone(self):
        tight = max_protected_nodes(P, "src", loss_budget=0.001)
        loose = max_protected_nodes(P, "src", loss_budget=0.1)
        assert loose > tight

"""Tests for the reliability analysis: expected loss, UDR, decomposition."""

import pytest

from repro.analysis import (
    amplification_factor,
    compare_schemes,
    compute_udr,
    decompose,
    expected_loss,
    expected_loss_per_error,
    figure3_series,
    figure12_table,
    geometric_mean,
    level_inventory,
    metadata_blocks,
    scheme_depths,
)

TB = 1 << 40
GB = 1 << 30


class TestLevelInventory:
    def test_levels_cover_whole_memory(self):
        for size in (GB, 4 * GB, TB):
            for info in level_inventory(size):
                covered = info.nodes * info.coverage_blocks
                assert covered * 64 >= size

    def test_each_level_same_total_coverage(self):
        """n_l x c_l is constant across levels (the paper's key
        observation: every level adds the same expected loss)."""
        inventory = level_inventory(TB)
        products = [i.nodes * i.coverage_blocks for i in inventory[:-1]]
        assert len(set(products)) == 1

    def test_metadata_overhead_about_1_78_percent(self):
        """Section 3.1: counters 1/64 + upper levels ~= 1.78% of data."""
        overhead = metadata_blocks(TB) / (TB // 64)
        assert 0.0155 < overhead < 0.0185

    def test_validation(self):
        with pytest.raises(ValueError):
            level_inventory(100)


class TestExpectedLoss:
    def test_non_secure_loses_one_block_per_error(self):
        assert expected_loss_per_error(TB, secure=False) == 64.0

    def test_secure_amplification_about_12x_at_4tb(self):
        """Figure 3: secure memory loses ~12x more expected data."""
        factor = amplification_factor(4 * TB)
        assert 9 <= factor <= 14

    def test_amplification_grows_with_memory_size(self):
        assert amplification_factor(TB) < amplification_factor(64 * TB)

    def test_loss_linear_in_errors(self):
        one = expected_loss(TB, 1, secure=True)
        ten = expected_loss(TB, 10, secure=True)
        assert ten == pytest.approx(10 * one)

    def test_figure3_series_structure(self):
        series = figure3_series(4 * TB, error_counts=[1, 2, 4])
        assert series["error_counts"] == [1, 2, 4]
        assert len(series["secure_bytes"]) == 3
        assert all(
            s > n
            for s, n in zip(series["secure_bytes"], series["non_secure_bytes"])
        )

    def test_negative_errors_rejected(self):
        with pytest.raises(ValueError):
            expected_loss(TB, -1, secure=True)


class TestUdr:
    P = 3e-6  # p_block_due around the paper's FIT-80 operating point

    def test_baseline_udr_is_p_times_levels(self):
        result = compute_udr(self.P, TB)
        num_levels = len(level_inventory(TB))
        assert result.udr == pytest.approx(self.P * num_levels, rel=0.05)

    def test_cloning_reduces_udr_dramatically(self):
        out = compare_schemes(self.P, TB)
        assert out["baseline"].udr > out["src"].udr > out["sac"].udr
        assert out["baseline"].udr / out["src"].udr > 1e4

    def test_resilience_vs(self):
        out = compare_schemes(self.P, TB)
        # src.resilience_vs(baseline): how many times more resilient
        # SRC is than the baseline — far greater than 1.
        assert out["src"].resilience_vs(out["baseline"]) > 1e3
        assert out["baseline"].resilience_vs(out["src"]) < 1

    def test_p_multi_due_overrides_independence(self):
        correlated = {1: self.P, 2: self.P / 10, 3: self.P / 10,
                      4: self.P / 10, 5: self.P / 10}
        independent = compute_udr(self.P, TB, clone_depths={1: 2})
        with_corr = compute_udr(
            self.P, TB, clone_depths={1: 2}, p_multi_due=correlated
        )
        assert with_corr.udr > independent.udr

    def test_zero_probability_gives_zero_udr(self):
        assert compute_udr(0.0, TB).udr == 0.0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            compute_udr(1.5, TB)

    def test_scheme_depths(self):
        depths = scheme_depths("sac", TB)
        assert depths[1] == 2
        assert max(depths.values()) == 5
        assert scheme_depths("baseline", TB) == {
            level: 1 for level in depths
        }
        with pytest.raises(ValueError):
            scheme_depths("other", TB)

    def test_per_level_contributions_equal_for_baseline(self):
        result = compute_udr(self.P, TB)
        values = [result.per_level[lvl] for lvl in sorted(result.per_level)[:-1]]
        assert max(values) / min(values) < 1.01


class TestLossDecomposition:
    P = 3e-6

    def test_non_secure_is_error_only(self):
        d = decompose(self.P, 8 * TB, "non-secure")
        assert d.l_unverifiable_bytes == 0
        assert d.inflation == 1.0

    def test_baseline_inflation_matches_level_count(self):
        d = decompose(self.P, 8 * TB, "baseline")
        levels = len(level_inventory(8 * TB))
        assert d.inflation == pytest.approx(1 + levels, rel=0.05)

    def test_soteria_total_close_to_error_only(self):
        """Figure 12: SRC and SAC keep L_total ~= L_error."""
        for scheme in ("src", "sac"):
            d = decompose(self.P, 8 * TB, scheme)
            assert d.inflation < 1.001

    def test_figure12_table_ordering(self):
        table = figure12_table(self.P)
        assert (
            table["non-secure"].l_total_bytes
            <= table["sac"].l_total_bytes
            <= table["src"].l_total_bytes
            <= table["baseline"].l_total_bytes
        )
        # Baseline loses several times more data overall (paper: 5.06x).
        assert table["baseline"].inflation > 4

    def test_zero_error_inflation(self):
        d = decompose(0.0, TB, "baseline")
        assert d.inflation == 1.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
        with pytest.raises(ValueError):
            geometric_mean([])

"""Cross-validation: direct Monte-Carlo UDR vs the analytic estimator.

The moment-based estimator (repro.analysis.udr) abstracts the layout;
the Monte-Carlo scorer (repro.analysis.udr_mc) walks real uncorrectable
block addresses through a real AddressMap.  Agreement between the two
— within Monte-Carlo noise — validates the whole Figure 11 pipeline.
"""

import pytest

from repro.analysis import compute_udr, scheme_depths
from repro.analysis.udr_mc import build_dimm_map, monte_carlo_udr
from repro.faults import FaultSimConfig, FaultSimulator


@pytest.fixture(scope="module")
def high_fit_sim():
    # High FIT so a few hundred conditioned trials see enough DUEs.
    return FaultSimulator(
        FaultSimConfig(fit_per_device=80, trials=4_000, seed=3)
    )


@pytest.fixture(scope="module")
def mc_baseline(high_fit_sim):
    return monte_carlo_udr(
        high_fit_sim, due_events_per_k=40, max_attempts_per_k=6_000,
        rng_seed=11,
    )


class TestDimmMap:
    def test_layout_fits_device(self, high_fit_sim):
        geometry = high_fit_sim.config.geometry
        amap = build_dimm_map(geometry)
        assert amap.total_bytes <= geometry.total_blocks * 64
        assert amap.num_levels >= 5

    def test_clone_depths_respected(self, high_fit_sim):
        geometry = high_fit_sim.config.geometry
        amap = build_dimm_map(geometry, clone_depths={1: 2, 2: 2})
        assert amap.clone_depths[1] == 2


class TestMonteCarloUdr:
    def test_l_error_agrees_with_per_block_probability(
        self, high_fit_sim, mc_baseline
    ):
        """The data-loss fraction is the high-statistics cross-check:
        every DUE event contributes, so even a small event budget pins
        it down — and it must match the moment estimator's per-block
        probability, computed by completely different code."""
        analytic_input = high_fit_sim.run(trials_per_k=1_500)
        ratio = mc_baseline.l_error_fraction / analytic_input.p_block_due
        # Loss per trial is heavy-tailed (rare whole-rank events carry
        # most of the mass), so 40 events/bucket only bounds the ratio
        # loosely; benchmarks/test_validation_mc.py tightens it.
        assert 0.1 < ratio < 10.0

    def test_udr_within_noise_of_analytic(self, high_fit_sim, mc_baseline):
        """UDR rides the rare metadata tail, so at this event budget we
        only bound it: positive and not above the analytic value by
        more than noise allows (the full-statistics comparison runs in
        benchmarks/test_validation_mc.py)."""
        analytic_input = high_fit_sim.run(trials_per_k=1_500)
        amap = build_dimm_map(high_fit_sim.config.geometry)
        analytic = compute_udr(
            analytic_input.p_block_due,
            amap.data_bytes,
            p_multi_due=analytic_input.p_multi_due_cross,
        )
        assert 0 <= mc_baseline.udr < analytic.udr * 50

    def test_data_errors_observed(self, mc_baseline):
        assert mc_baseline.l_error_fraction > 0
        assert mc_baseline.by_region.get("data", 0) > 0

    def test_cloning_never_increases_mc_udr(self, high_fit_sim, mc_baseline):
        amap = build_dimm_map(high_fit_sim.config.geometry)
        depths = scheme_depths("src", amap.data_bytes)
        mc_src = monte_carlo_udr(
            high_fit_sim, clone_depths=depths,
            due_events_per_k=40, max_attempts_per_k=6_000, rng_seed=11,
        )
        # Identical trial stream (same seed): cloning can only reduce
        # loss.  (Residual equality happens when the only sampled
        # metadata losses were sidecar-forced, which clones cannot fix.)
        assert mc_src.udr <= mc_baseline.udr


class TestMonteCarloCi:
    def test_half_width_present_and_sane(self, mc_baseline):
        assert mc_baseline.udr_half_width >= 0.0
        # The CI must not dwarf the estimate into meaninglessness when
        # events were actually observed.
        if mc_baseline.udr > 0:
            assert mc_baseline.udr_half_width < mc_baseline.udr * 100


class TestEmpiricalVsAnalytic:
    """Per-scheme cross-check: the analytic UDR (moment estimator fed
    the campaign's own clone-survival moments) must land inside every
    registered scheme's empirical confidence interval at a fast FIT
    point — the acceptance gate for the streaming-campaign pipeline."""

    @pytest.fixture(scope="class")
    def report(self):
        import warnings

        from repro.faults import (
            importance_distribution,
            mc_report,
            run_mc_campaign,
        )

        config = FaultSimConfig(fit_per_device=80, trials=6_000, seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            campaign = run_mc_campaign(
                config,
                trials=6_000,
                batch_trials=1_000,
                importance=importance_distribution(config.relative_rates),
            )
        return mc_report(campaign)

    def test_all_registered_schemes_covered(self, report):
        from repro.schemes import scheme_names

        assert set(report["schemes"]) == set(scheme_names())

    def test_analytic_inside_empirical_ci(self, report):
        for name, entry in report["schemes"].items():
            assert entry["analytic_in_ci"], (
                f"{name}: analytic {entry['analytic']:.3e} outside "
                f"{entry['udr']:.3e} +- {entry['half_width']:.1e}"
            )

    def test_error_bars_are_positive_when_loss_observed(self, report):
        for entry in report["schemes"].values():
            if entry["udr"] > 0:
                assert entry["half_width"] > 0

    def test_udr_result_propagates_moment_half_widths(self, report):
        analytic = compute_udr(
            report["p_block_due"],
            report["data_bytes"],
            clone_depths=scheme_depths("src", report["data_bytes"]),
            scheme="src",
            p_multi_due={
                int(d): v for d, v in report["p_multi_due_cross"].items()
            },
            p_multi_due_half_width={
                int(d): v
                for d, v in report["p_multi_due_cross_half_width"].items()
            },
        )
        assert analytic.half_width > 0

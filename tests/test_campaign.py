"""Resilience campaign harness: determinism, audit, the invariant."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.faults.campaign as campaign_mod
from repro.faults import (
    CampaignConfig,
    RunResult,
    SilentCorruptionError,
    run_campaign,
    run_single,
)

QUICK = dict(ops=600, num_faults=4)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(ops=0)
        with pytest.raises(ValueError):
            CampaignConfig(targets=("bogus",))
        with pytest.raises(ValueError):
            CampaignConfig(horizon_fraction=0)
        with pytest.raises(ValueError):
            CampaignConfig(write_fraction=1.5)

    def test_run_seed_is_a_pure_function_of_the_sweep_point(self):
        cfg = CampaignConfig(**QUICK)
        a = campaign_mod._run_seed(cfg, "src", "counter", 0)
        assert a == campaign_mod._run_seed(cfg, "src", "counter", 0)
        assert a != campaign_mod._run_seed(cfg, "src", "counter", 250)
        assert a != campaign_mod._run_seed(cfg, "sac", "counter", 0)


class TestSingleRun:
    def test_baseline_counter_faults_are_quarantined_not_silent(self):
        r = run_single(CampaignConfig(**QUICK), "baseline", "counter", 0)
        assert r.invariant_ok
        assert r.audit["quarantined"] > 0
        assert r.empirical_udr > 0
        assert r.stats["quarantined_bytes"] == r.audit["quarantined"] * 64
        assert r.quarantine   # registry report lists the dead ranges

    def test_src_repairs_counter_faults_transparently(self):
        r = run_single(CampaignConfig(**QUICK), "src", "counter", 0)
        assert r.invariant_ok
        assert r.empirical_udr == 0
        assert r.audit["quarantined"] == 0
        assert r.audit["unverifiable"] == 0

    def test_audit_covers_every_written_block(self):
        r = run_single(CampaignConfig(**QUICK), "src", "tree", 250)
        blocks = CampaignConfig(**QUICK).data_bytes // 64
        assert sum(r.audit.values()) + sum(
            1 for v in r.violations if v["phase"] == "audit"
        ) == blocks

    def test_scrubbing_repairs_before_demand(self):
        r = run_single(CampaignConfig(**QUICK), "sac", "counter_mac", 100)
        assert r.invariant_ok
        assert r.stats["scrub_passes"] > 0

    def test_data_faults_surface_as_typed_dues(self):
        r = run_single(CampaignConfig(**QUICK), "src", "data", 0)
        assert r.invariant_ok
        # Direct data DUEs either get overwritten (healed) or raise.
        assert r.audit["data_due"] + r.audit["intact"] == sum(r.audit.values())

    def test_shadow_target_crosses_a_crash(self):
        r = run_single(CampaignConfig(**QUICK), "src", "shadow", 0)
        assert r.recovery.startswith(("recovered", "failed"))
        assert r.invariant_ok


class TestCampaign:
    def test_report_is_bit_reproducible(self):
        cfg = CampaignConfig(
            **QUICK, schemes=("baseline", "src"),
            targets=("counter", "counter_mac"), scrub_intervals=(0,),
        )
        assert run_campaign(cfg).to_json() == run_campaign(cfg).to_json()

    def test_different_seed_different_report(self):
        base = dict(
            **QUICK, schemes=("baseline",), targets=("counter",),
            scrub_intervals=(0,),
        )
        a = run_campaign(CampaignConfig(seed=1, **base)).to_json()
        b = run_campaign(CampaignConfig(seed=2, **base)).to_json()
        assert a != b

    def test_baseline_udr_at_least_10x_soteria(self):
        cfg = CampaignConfig(
            **QUICK, targets=("counter", "tree", "counter_mac"),
            scrub_intervals=(0, 200),
        )
        report = run_campaign(cfg)
        assert report.invariant_ok
        base = report.schemes["baseline"]["mean_empirical_udr"]
        assert base > 0
        for scheme in ("src", "sac"):
            assert report.resilience[scheme]["ge_10x"]
            assert base >= 10 * report.schemes[scheme]["mean_empirical_udr"]

    def test_report_round_trips_through_json(self):
        cfg = CampaignConfig(
            **QUICK, schemes=("src",), targets=("counter",),
            scrub_intervals=(0,),
        )
        decoded = json.loads(run_campaign(cfg).to_json())
        assert decoded["invariant_ok"] is True
        assert decoded["runs"][0]["scheme"] == "src"
        assert "injector" in decoded["runs"][0]

    def test_silent_corruption_fails_the_campaign(self, monkeypatch):
        bad = RunResult(
            scheme="baseline", target="counter", scrub_interval=0, seed=0,
            injector={"poisoned_blocks": 0},
            violations=[{"phase": "audit", "op": -1, "block": 7}],
        )
        monkeypatch.setattr(
            campaign_mod, "run_single", lambda *a, **k: bad
        )
        cfg = CampaignConfig(
            **QUICK, schemes=("baseline",), targets=("counter",),
            scrub_intervals=(0,),
        )
        with pytest.raises(SilentCorruptionError, match="block.*7"):
            campaign_mod.run_campaign(cfg)
        report = campaign_mod.run_campaign(
            CampaignConfig(
                **QUICK, schemes=("baseline",), targets=("counter",),
                scrub_intervals=(0,), enforce_invariant=False,
            )
        )
        assert not report.invariant_ok


class TestExampleSeedThreading:
    def test_fault_injection_study_is_seed_deterministic(self):
        """The example prints identical numbers for identical --seed."""
        repo = Path(__file__).resolve().parent.parent
        script = repo / "examples" / "fault_injection_study.py"
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))

        def run(seed):
            return subprocess.run(
                [sys.executable, str(script), "--seed", str(seed),
                 "--trials", "2000"],
                capture_output=True, text=True, env=env, check=True,
            ).stdout

        first = run(9)
        assert "seed 9" in first
        assert run(9) == first
        assert run(10) != first

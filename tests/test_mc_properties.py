"""Property tests for the streaming MC layer.

Three invariants the 1e8-trial campaign design rests on:

* estimator state is a pure function of the *set* of batches — any
  insertion or merge order yields bitwise-identical aggregates;
* the vectorized sampler is batch-size invariant — any chunking of a
  global trial range yields identical fault arrays;
* a checkpointed campaign resumed mid-flight finishes bit-identical to
  an uninterrupted run.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultSimConfig,
    McBatchStat,
    McEstimatorState,
    run_mc_campaign,
    union_block_count,
)
from repro.faults import mc
from repro.faults.ecc import DueRegion
from repro.faults.fault_model import Extent
from repro.memory.geometry import DimmGeometry


CONFIG = FaultSimConfig(fit_per_device=80, trials=2_000, seed=3)

_STAT_NAMES = ("due", "blocks", "moment_2", "cross_2", "scheme:src")


@st.composite
def batch_stats(draw):
    trials = draw(st.integers(1, 500))
    finite = st.floats(
        0.0, 1e9, allow_nan=False, allow_infinity=False
    )
    return McBatchStat(
        k=draw(st.integers(1, 8)),
        batch_index=draw(st.integers(0, 30)),
        trials=trials,
        due_count=draw(st.integers(0, trials)),
        approximated_ranks=draw(st.integers(0, 3)),
        weight_sum=draw(finite),
        weight_sumsq=draw(finite),
        sums={name: draw(finite) for name in _STAT_NAMES},
        sumsq={name: draw(finite) for name in _STAT_NAMES},
    )


class TestMergeOrderInvariance:
    @given(stats=st.lists(batch_stats(), min_size=1, max_size=12),
           seed=st.integers(0, 2**32 - 1))
    @settings(deadline=None, max_examples=60)
    def test_any_insertion_order_is_bitwise_identical(self, stats, seed):
        unique = list({s.key(): s for s in stats}.values())
        forward = McEstimatorState()
        for s in unique:
            forward.add(s)
        shuffled = list(unique)
        np.random.default_rng(seed).shuffle(shuffled)
        backward = McEstimatorState()
        for s in shuffled:
            backward.add(s)
        assert forward.per_k() == backward.per_k()
        assert forward.total_trials == backward.total_trials

    @given(stats=st.lists(batch_stats(), min_size=2, max_size=10),
           cut=st.integers(0, 10))
    @settings(deadline=None, max_examples=60)
    def test_merge_is_commutative(self, stats, cut):
        unique = list({s.key(): s for s in stats}.values())
        cut = min(cut, len(unique))
        a, b = McEstimatorState(), McEstimatorState()
        for s in unique[:cut]:
            a.add(s)
        for s in unique[cut:]:
            b.add(s)
        assert a.merge(b).per_k() == b.merge(a).per_k()

    def test_duplicate_add_is_noop_conflict_is_error(self):
        stat = McBatchStat(
            k=2, batch_index=0, trials=10, due_count=1,
            approximated_ranks=0, weight_sum=10.0, weight_sumsq=10.0,
            sums={"due": 1.0}, sumsq={"due": 1.0},
        )
        state = McEstimatorState()
        state.add(stat)
        state.add(stat)  # idempotent
        assert len(state.batches) == 1
        conflicting = McBatchStat(
            k=2, batch_index=0, trials=10, due_count=2,
            approximated_ranks=0, weight_sum=10.0, weight_sumsq=10.0,
            sums={"due": 2.0}, sumsq={"due": 2.0},
        )
        with pytest.raises(ValueError, match="conflicting"):
            state.add(conflicting)


class TestSamplerBatchInvariance:
    @given(
        k=st.sampled_from([1, 2, 5]),
        edges=st.lists(st.integers(1, 149), unique=True, max_size=4),
    )
    @settings(deadline=None, max_examples=25)
    def test_any_chunking_yields_identical_arrays(self, k, edges):
        bounds = [0] + sorted(edges) + [150]
        whole = mc.sample_batch(CONFIG, k, 0, 150)
        parts = [
            mc.sample_batch(CONFIG, k, lo, hi - lo)
            for lo, hi in zip(bounds, bounds[1:])
        ]
        for name in ("class_index", "rank", "chip", "bank_mask",
                     "row", "group", "multibit", "weight"):
            stitched = np.concatenate([getattr(p, name) for p in parts])
            assert np.array_equal(getattr(whole, name), stitched)


_UNION_GEOMETRY = DimmGeometry(
    chips=8, chips_per_rank=4, ranks=2, banks=4, rows=4, cols=256
)

_region = st.tuples(
    st.sets(st.integers(0, 3), min_size=1, max_size=4),
    st.integers(-1, 3),
    st.integers(-1, 3),
)


class TestUnionEncoding:
    @given(specs=st.lists(_region, min_size=1, max_size=6))
    @settings(deadline=None, max_examples=80)
    def test_int_encoding_matches_object_union(self, specs):
        """The vector engine's (mask, row, group) inclusion-exclusion
        must agree with ``union_block_count`` on the object model for
        arbitrary overlapping region sets."""
        encoded, regions = [], []
        for banks, row, group in specs:
            mask = 0
            for bank in banks:
                mask |= 1 << bank
            encoded.append((mask, row, group))
            regions.append(
                DueRegion(
                    rank=0,
                    extent=Extent(
                        banks=set(banks),
                        rows=None if row == -1 else {row},
                        groups=None if group == -1 else {group},
                    ),
                )
            )
        assert mc._union_regions(
            encoded, _UNION_GEOMETRY
        ) == union_block_count(regions, _UNION_GEOMETRY)


class TestResumeEqualsUninterrupted:
    def _compare(self, a, b):
        assert a.p_block_due == b.p_block_due
        assert a.p_block_due_half_width == b.p_block_due_half_width
        assert a.due_probability == b.due_probability
        assert a.expected_due_blocks == b.expected_due_blocks
        assert a.p_multi_due == b.p_multi_due
        assert a.p_multi_due_cross == b.p_multi_due_cross
        assert a.by_fault_count == b.by_fault_count
        assert a.schemes == b.schemes
        assert a.state.per_k() == b.state.per_k()
        assert a.total_trials == b.total_trials

    def test_resumed_campaign_bit_identical(self, tmp_path):
        """Run wave 0 checkpointed (the 'interrupted' half), then the
        full campaign with resume: the finished estimate must be
        bitwise equal to an uninterrupted run of the same budget."""
        kwargs = dict(batch_trials=200, schemes=("baseline", "src"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            uninterrupted = run_mc_campaign(
                CONFIG, max_waves=2, **kwargs
            )
            run_mc_campaign(
                CONFIG, max_waves=1,
                checkpoint=str(tmp_path / "mc"), **kwargs
            )
            resumed = run_mc_campaign(
                CONFIG, max_waves=2,
                checkpoint=str(tmp_path / "mc"), resume=True, **kwargs
            )
        self._compare(uninterrupted, resumed)

    def test_checkpointed_equals_plain(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            plain = run_mc_campaign(CONFIG, max_waves=1, batch_trials=150,
                                    schemes=())
            journaled = run_mc_campaign(
                CONFIG, max_waves=1, batch_trials=150, schemes=(),
                checkpoint=str(tmp_path / "ck"),
            )
        self._compare(plain, journaled)

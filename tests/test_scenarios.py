"""Adversarial scenario engine: catalog hygiene, oracle-clean
execution, determinism (serial == parallel == resumed), and phase
semantics (power cuts, shrink/regrow, quarantine pressure)."""

import pytest

from repro.faults import (
    CATALOG,
    SCENARIO_SCHEMA,
    Phase,
    Scenario,
    ScenarioConfig,
    SilentCorruptionError,
    get_scenario,
    list_scenarios,
    run_scenario,
    run_scenario_campaign,
)
from repro.faults.scenarios import report_to_json
from repro.runtime import CheckpointJournal, SimulatedCrashError

KB = 1024

#: Small device so the whole catalog stays test-speed.
QUICK = dict(data_bytes=32 * KB)


def _crashing_journal(directory, fail_after):
    def factory(fingerprint, total_cells):
        return CheckpointJournal(
            directory, fingerprint=fingerprint, total_cells=total_cells,
            resume=True, fail_after_appends=fail_after,
        )
    return factory


class TestCatalog:
    def test_catalog_size_and_lookup(self):
        assert 6 <= len(CATALOG) <= 8
        assert list_scenarios() == CATALOG
        for scenario in CATALOG:
            assert get_scenario(scenario.name) is scenario
            assert scenario.description and scenario.models
            assert scenario.expected and scenario.phases

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("meteor-strike")
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioConfig(scenarios=("meteor-strike",))

    def test_phase_validation(self):
        with pytest.raises(ValueError, match="phase kind"):
            Phase(kind="comet")
        with pytest.raises(ValueError, match="arrival"):
            Phase(arrival="tsunami")
        with pytest.raises(ValueError, match="unknown targets"):
            Phase(targets=("bogus",))
        with pytest.raises(ValueError, match="offline_fraction"):
            Phase(kind="offline", offline_fraction=1.5)

    def test_scenario_total_ops_counts_cut_gaps(self):
        scenario = Scenario(
            name="x", description="d", models="m", expected="e",
            phases=(Phase(kind="ops", ops=100),
                    Phase(kind="power_cut", cuts=3, ops=50)),
        )
        assert scenario.total_ops == 250


class TestCatalogOracleClean:
    """ISSUE acceptance: every cataloged scenario runs under the
    Oracle + InvariantChecker with zero silent corruptions."""

    @pytest.mark.parametrize(
        "name", [scenario.name for scenario in CATALOG]
    )
    def test_scenario_is_oracle_clean(self, name):
        config = ScenarioConfig(**QUICK)
        for scheme in ("src", "sac"):
            result = run_scenario(config, name, scheme)
            assert result["violations"] == [], (name, scheme)
            assert result["verify"]["ok"], (name, scheme)
            assert result["invariant_ok"]
            # The trichotomy covers the whole mirror.
            audit = result["audit"]
            assert sum(audit.values()) == config.data_bytes // 64


class TestPhaseSemantics:
    def test_powercut_storm_loses_nothing_on_clean_cuts(self):
        result = run_scenario(
            ScenarioConfig(**QUICK), "powercut-storm", "src"
        )
        assert result["recovery"] == ["ok", "ok", "ok"]
        assert result["audit"]["intact"] == 32 * KB // 64
        assert result["run_errors"] == {
            "data_due": 0, "quarantined": 0, "integrity": 0
        }

    def test_dimm_offline_blocks_fault_typed_until_rewritten(self):
        result = run_scenario(
            ScenarioConfig(**QUICK), "dimm-offline", "src"
        )
        audit = result["audit"]
        # The offline slice surfaces as typed DUEs (mid-run and at
        # audit) unless the post-regrow phase rewrote a block.
        assert audit["data_due"] > 0
        assert result["violations"] == []
        offline = [p for p in result["phases"] if p["kind"] == "offline"]
        assert offline and offline[0]["offline_blocks"] > 0

    def test_quarantine_pressure_degrades_gracefully(self):
        # Clone-less scheme + cold metadata cache: scrub repairs fail,
        # quarantine grows, and the run still ends violation-free.
        config = ScenarioConfig(
            data_bytes=256 * KB, metadata_cache_bytes=512,
            schemes=("baseline",),
        )
        result = run_scenario(config, "quarantine-pressure", "baseline")
        assert result["violations"] == []
        assert result["stats"]["quarantined_nodes"] > 0
        assert result["audit"]["quarantined"] > 0

    def test_trace_driven_scenario(self):
        config = ScenarioConfig(
            **QUICK, trace="tests/fixtures/interleaved.trace"
        )
        result = run_scenario(config, "scrub-race", "src")
        assert result["violations"] == []
        assert result["ops"] == get_scenario("scrub-race").total_ops


class TestDeterminism:
    """ISSUE acceptance: jobs=1 == jobs=N, and an interrupted-then-
    resumed campaign merges bit-identically to an uninterrupted one."""

    CONFIG = dict(
        data_bytes=32 * KB, schemes=("src",),
        scenarios=("ramp-siege", "crash-during-recovery"),
    )

    def test_single_run_is_bit_reproducible(self):
        config = ScenarioConfig(**QUICK)
        a = run_scenario(config, "bank-storm", "src")
        b = run_scenario(config, "bank-storm", "src")
        assert a == b

    def test_seed_changes_the_run(self):
        a = run_scenario(ScenarioConfig(**QUICK), "bank-storm", "src")
        b = run_scenario(ScenarioConfig(seed=77, **QUICK),
                         "bank-storm", "src")
        assert a["phases"] != b["phases"]

    def test_jobs_parallel_bit_identical_to_serial(self):
        config = ScenarioConfig(**self.CONFIG)
        serial = run_scenario_campaign(config, jobs=1)
        parallel = run_scenario_campaign(config, jobs=2)
        assert report_to_json(serial) == report_to_json(parallel)

    def test_interrupted_resume_bit_identical(self, tmp_path):
        config = ScenarioConfig(**self.CONFIG)
        clean = run_scenario_campaign(config, jobs=1)

        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(SimulatedCrashError):
            # Crash after the header + 1 journaled cell.
            run_scenario_campaign(
                config, jobs=1, checkpoint=_crashing_journal(ckpt, 2)
            )
        resumed = run_scenario_campaign(
            config, jobs=1, checkpoint=ckpt, resume=True
        )
        # Identical modulo the runtime's resumed-cell telemetry.
        assert resumed["runs"] == clean["runs"]
        assert resumed["scenarios"] == clean["scenarios"]
        assert resumed["invariant_ok"] == clean["invariant_ok"]


class TestReportSchema:
    def test_scenario_report_shape(self):
        config = ScenarioConfig(
            data_bytes=32 * KB, schemes=("src",),
            scenarios=("scrub-race",),
        )
        report = run_scenario_campaign(config, jobs=1)
        assert report["schema"] == SCENARIO_SCHEMA == "scenario/v1"
        assert report["invariant_ok"] is True
        assert report["config"]["scenarios"] == ["scrub-race"]
        (run,) = report["runs"]
        for key in ("scenario", "scheme", "seed", "phases", "audit",
                    "violations", "verify", "stats", "empirical_udr",
                    "run_errors", "recovery", "quarantine"):
            assert key in run, key
        # JSON-stable end to end.
        import json

        assert json.loads(report_to_json(report)) == report

    def test_enforce_invariant_raises_on_violation(self, monkeypatch):
        import repro.faults.scenarios as scenarios_module

        def corrupt_cell(cell):
            result = scenarios_module.run_scenario(*cell)
            result["violations"] = [{"phase": "test", "op": 0}]
            return result

        monkeypatch.setattr(
            scenarios_module, "_scenario_cell", corrupt_cell
        )
        config = ScenarioConfig(
            data_bytes=32 * KB, schemes=("src",),
            scenarios=("scrub-race",),
        )
        with pytest.raises(SilentCorruptionError):
            run_scenario_campaign(config, jobs=1)
        report = run_scenario_campaign(
            ScenarioConfig(
                data_bytes=32 * KB, schemes=("src",),
                scenarios=("scrub-race",), enforce_invariant=False,
            ),
            jobs=1,
        )
        assert report["invariant_ok"] is False

"""Live fault injector: scheduling, targeting, determinism."""

import numpy as np
import pytest

from repro.core import make_controller
from repro.faults import INJECTION_TARGETS, FaultInjector, region_addresses

KB = 1024


def make_ctrl(scheme="src", seed=7):
    ctrl = make_controller(
        scheme, 64 * KB, functional_crypto=True, quarantine=True,
        rng=np.random.default_rng(seed),
    )
    for block in range(0, ctrl.num_data_blocks, 4):
        ctrl.write(block, bytes([block % 251]) * 64)
    ctrl.flush()
    return ctrl


class TestScheduling:
    def test_events_fire_in_op_order(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter",), seed=1,
                            num_faults=5, horizon_ops=100)
        assert [e.op for e in inj.events] == sorted(e.op for e in inj.events)
        fired_ops = []
        for op in range(100):
            for event in inj.poll(op):
                fired_ops.append(event.op)
        assert inj.pending == 0
        assert sorted(fired_ops) == fired_ops

    def test_poll_is_idempotent_per_event(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter",), seed=1,
                            num_faults=3, horizon_ops=10)
        first = inj.poll(10)
        assert len(first) + sum(e.deferred for e in inj.events) == 3
        assert inj.poll(10) == []

    def test_drain_fires_everything(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("tree",), seed=2,
                            num_faults=4, horizon_ops=1000)
        inj.drain()
        assert inj.pending == 0
        assert all(e.fired or e.deferred for e in inj.events)

    def test_targets_cycle_round_robin(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter", "tree"), seed=3,
                            num_faults=4, horizon_ops=100)
        assert [e.target for e in inj.events] == [
            "counter", "tree", "counter", "tree"
        ]


class TestValidation:
    def test_rejects_unknown_target(self):
        ctrl = make_ctrl()
        with pytest.raises(ValueError, match="unknown injection targets"):
            FaultInjector(ctrl, targets=("bogus",))

    def test_rejects_unknown_mode(self):
        ctrl = make_ctrl()
        with pytest.raises(ValueError, match="mode"):
            FaultInjector(ctrl, mode="fuzzy")

    def test_all_documented_targets_resolve(self):
        ctrl = make_ctrl(scheme="sac")
        for target in INJECTION_TARGETS:
            inj = FaultInjector(ctrl, targets=(target,), seed=4,
                                num_faults=1, horizon_ops=1)
            assert inj._candidates(target), target


class TestDamage:
    def test_direct_mode_poisons_target_region(self):
        ctrl = make_ctrl()
        amap = ctrl.amap
        counter_addresses = {
            amap.node_addr(1, i) for i in range(amap.level_sizes[0])
        }
        inj = FaultInjector(ctrl, targets=("counter",), seed=5,
                            num_faults=4, horizon_ops=10)
        inj.drain()
        injected = inj.injected_addresses()
        assert injected
        assert injected <= counter_addresses
        assert all(ctrl.nvm.is_poisoned(a) for a in injected)

    def test_baseline_has_no_clone_candidates(self):
        ctrl = make_ctrl(scheme="baseline")
        inj = FaultInjector(ctrl, targets=("clone",), seed=6,
                            num_faults=2, horizon_ops=10)
        inj.drain()
        assert inj.injected_addresses() == set()
        assert all(e.deferred for e in inj.events)

    def test_ecc_mode_defers_correctable_arrivals(self):
        # Under Chipkill a single chip fault is always correctable, so
        # the very first event can never poison anything.
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter",), seed=7,
                            num_faults=6, horizon_ops=10, mode="ecc")
        inj.drain()
        assert inj.events[0].deferred

    def test_summary_counts(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter",), seed=8,
                            num_faults=3, horizon_ops=10)
        inj.drain()
        s = inj.summary()
        assert s["scheduled"] == 3
        assert s["fired"] + s["deferred"] == 3
        assert len(s["events"]) == 3


class TestEmptyAndQuarantinedRegions:
    """Satellite regression: empty / fully-quarantined targets must
    produce a well-formed zero summary, never raise."""

    def test_empty_targets_tuple_schedules_nothing(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=(), seed=1, num_faults=5,
                            horizon_ops=100)
        assert inj.events == []
        assert inj.drain() == []
        s = inj.summary()
        assert s["scheduled"] == 0
        assert s["fired"] == 0
        assert s["deferred"] == 0
        assert s["poisoned_blocks"] == 0
        assert s["events"] == []

    def test_empty_region_defers_with_zero_summary(self):
        # baseline has no clone copies: the region is genuinely empty.
        ctrl = make_ctrl(scheme="baseline")
        inj = FaultInjector(ctrl, targets=("clone",), seed=2, num_faults=3,
                            horizon_ops=10)
        inj.drain()
        s = inj.summary()
        assert s["fired"] == 0
        assert s["deferred"] == 3
        assert s["poisoned_blocks"] == 0

    def test_fully_quarantined_region_defers_instead_of_raising(self):
        ctrl = make_ctrl()
        for index in range(ctrl.amap.level_sizes[0]):
            ctrl.quarantine_node(1, index, "test exhaustion")
        inj = FaultInjector(ctrl, targets=("counter",), seed=3,
                            num_faults=4, horizon_ops=10,
                            exclude_quarantined=True)
        inj.drain()
        s = inj.summary()
        assert s["fired"] == 0
        assert s["deferred"] == 4
        assert s["poisoned_blocks"] == 0

    def test_exclude_quarantined_filters_candidates(self):
        ctrl = make_ctrl()
        all_counters = region_addresses(ctrl, "counter")
        entry = ctrl.quarantine_node(1, 0, "test")
        assert entry is not None
        remaining = region_addresses(ctrl, "counter",
                                     exclude_quarantined=True)
        assert ctrl.amap.node_addr(1, 0) in all_counters
        assert ctrl.amap.node_addr(1, 0) not in remaining
        assert set(remaining) < set(all_counters)

    def test_exclude_quarantined_filters_covered_data_blocks(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 0, "test")
        covered = ctrl.amap.data_blocks_covered(1, 0)
        remaining = region_addresses(ctrl, "data",
                                     exclude_quarantined=True)
        blocks = {a // 64 for a in remaining}
        assert not blocks & set(covered)

    def test_default_behavior_unchanged_without_flag(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 0, "test")
        # Without the opt-in flag the historical candidate list (and
        # therefore every pinned campaign seed) is untouched.
        assert ctrl.amap.node_addr(1, 0) in region_addresses(ctrl, "counter")


class TestExplicitArrivals:
    def test_arrivals_pin_the_schedule(self):
        ctrl = make_ctrl()
        inj = FaultInjector(ctrl, targets=("counter",), seed=4,
                            num_faults=3, horizon_ops=1000,
                            arrivals=(500, 10, 200))
        assert [e.op for e in inj.events] == [10, 200, 500]

    def test_arrivals_length_must_match(self):
        ctrl = make_ctrl()
        with pytest.raises(ValueError, match="arrivals"):
            FaultInjector(ctrl, targets=("counter",), num_faults=3,
                          arrivals=(1, 2))

    def test_same_arrivals_same_damage(self):
        def run():
            ctrl = make_ctrl(seed=11)
            inj = FaultInjector(ctrl, targets=("counter",), seed=9,
                                num_faults=4, horizon_ops=100,
                                arrivals=(0, 0, 50, 99))
            inj.drain()
            return inj.summary()

        assert run() == run()


class TestDeterminism:
    def test_same_seed_same_schedule_and_damage(self):
        def run(seed):
            ctrl = make_ctrl(seed=11)
            inj = FaultInjector(ctrl, targets=("counter", "tree"),
                                seed=seed, num_faults=6, horizon_ops=500)
            inj.drain()
            return inj.summary()

        assert run(42) == run(42)
        assert run(42) != run(43)

"""The vector-vs-scalar differential prover (repro mc-diff)."""

import pytest

from repro.verify.mc_diff import (
    MC_DIFF_SCHEMA,
    diff_configs,
    rng_case,
    run_mc_diff,
    sampler_case,
    trial_case,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_mc_diff(trials=300, quick=True)


class TestCorpus:
    def test_corpus_covers_every_ecc_model(self):
        repairs = {config.repair for _, config, _ in diff_configs()}
        assert repairs == {"chipkill", "chipkill2", "secded", "none"}

    def test_corpus_pins_degenerate_geometry(self):
        names = [name for name, _, _ in diff_configs()]
        assert any("tiny-geometry" in name for name in names)

    def test_corpus_reaches_the_fallback_bucket(self):
        assert any(8 in ks for _, _, ks in diff_configs())


class TestQuickSuite:
    def test_everything_identical(self, quick_report):
        assert quick_report["schema"] == MC_DIFF_SCHEMA
        assert quick_report["identical"] is True
        for row in quick_report["cases"]:
            assert row["identical"], row

    def test_covers_all_layers(self, quick_report):
        kinds = {row["kind"] for row in quick_report["cases"]}
        assert kinds == {"rng", "sampler", "trial", "result", "batching"}
        # importance runs through the trial layer under a marked name
        assert any(
            row["name"].endswith("/importance")
            for row in quick_report["cases"]
        )

    def test_progress_callback_sees_every_row(self):
        seen = []
        report = run_mc_diff(trials=100, quick=True, progress=seen.append)
        assert len(seen) == report["total"]


class TestSingleCases:
    def test_rng_case_identical(self):
        assert rng_case()["identical"]

    def test_sampler_case_identical(self):
        name, config, ks = diff_configs()[0]
        assert sampler_case(name, config, ks[0], 100)["identical"]

    def test_trial_case_identical(self):
        name, config, ks = diff_configs()[0]
        assert trial_case(name, config, ks[0], 200)["identical"]

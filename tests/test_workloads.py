"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    Workload,
    ctree,
    echo,
    gcc,
    hashmap,
    lbm,
    libquantum,
    mcf,
    milc,
    pmemkv,
    redo_log,
    standard_suite,
    tpcc,
    ubench,
    ycsb,
    ycsb_a,
    ycsb_b,
    ycsb_c,
    zipf_addresses,
)

ALL_FACTORIES = [
    lambda: ubench(16),
    lambda: ubench(128),
    lambda: ctree(),
    lambda: hashmap(),
    lambda: redo_log(),
    lambda: tpcc(),
    lambda: echo(),
    lambda: pmemkv(0.9),
    lambda: pmemkv(0.1),
    lambda: mcf(),
    lambda: lbm(),
    lambda: libquantum(),
    lambda: gcc(),
    lambda: milc(),
    lambda: ycsb_a(),
    lambda: ycsb_b(),
    lambda: ycsb_c(),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_reference_stream_well_formed(factory):
    workload = factory()
    workload.num_refs = 500
    refs = workload.materialize()
    assert len(refs) == 500
    for address, is_write, gap in refs:
        assert 0 <= address < workload.footprint_bytes
        assert isinstance(is_write, bool) or is_write in (0, 1)
        assert gap >= 0


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_stream_replayable(factory):
    workload = factory()
    workload.num_refs = 300
    assert workload.materialize() == workload.materialize()


class TestUbench:
    def test_stride_respected(self):
        w = ubench(64, footprint_bytes=1 << 20, num_refs=10)
        addrs = [a for a, _, _ in w.materialize()]
        assert addrs[1] - addrs[0] == 64

    def test_read_write_ratio_one(self):
        w = ubench(16, num_refs=1000)
        writes = sum(1 for _, is_write, _ in w.materialize() if is_write)
        assert writes == 500

    def test_wraps_footprint(self):
        w = ubench(64, footprint_bytes=640, num_refs=30)
        assert all(a < 640 for a, _, _ in w.materialize())

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            ubench(0)


class TestWhisper:
    def test_ctree_mixes_reads_and_writes(self):
        refs = ctree(num_refs=2000).materialize()
        writes = sum(1 for _, w, _ in refs if w)
        assert 0 < writes < 2000

    def test_redo_log_has_sequential_log_writes(self):
        w = redo_log(footprint_bytes=1 << 20, num_refs=2000)
        writes = [a for a, is_w, _ in w.materialize() if is_w]
        # Log appends form ascending runs in the top quarter.
        log_base = (1 << 20) // 64 * 3 // 4 * 64
        log_writes = [a for a in writes if a >= log_base]
        assert len(log_writes) > 10

    def test_hashmap_write_fraction_reasonable(self):
        refs = hashmap(num_refs=3000).materialize()
        writes = sum(1 for _, w, _ in refs if w)
        assert 0.2 < writes / 3000 < 0.8


class TestPmemkv:
    def test_put_has_more_writes_than_get(self):
        puts = sum(1 for _, w, _ in pmemkv(0.9, num_refs=3000).materialize() if w)
        gets = sum(1 for _, w, _ in pmemkv(0.1, num_refs=3000).materialize() if w)
        assert puts > gets

    def test_names(self):
        assert pmemkv(0.9).name == "pmemkv_put"
        assert pmemkv(0.1).name == "pmemkv_get"

    def test_validation(self):
        with pytest.raises(ValueError):
            pmemkv(1.5)


class TestSpec:
    def test_mcf_read_dominated_low_locality(self):
        refs = mcf(num_refs=4000).materialize()
        writes = sum(1 for _, w, _ in refs if w)
        assert writes / 4000 < 0.1
        unique_blocks = {a // 64 for a, _, _ in refs}
        assert len(unique_blocks) > 3500  # pointer chase barely repeats

    def test_gcc_high_locality(self):
        refs = gcc(num_refs=4000).materialize()
        unique_blocks = {a // 64 for a, _, _ in refs}
        assert len(unique_blocks) < 2000  # Zipf working set re-use

    def test_libquantum_sequential(self):
        refs = libquantum(num_refs=100).materialize()
        addrs = [a for a, _, _ in refs]
        assert addrs[:5] == [0, 64, 128, 192, 256]

    def test_lbm_alternates_read_write(self):
        refs = lbm(num_refs=100).materialize()
        assert [w for _, w, _ in refs[:4]] == [False, True, False, True]

    def test_milc_stride(self):
        refs = milc(stride_blocks=5, num_refs=10).materialize()
        addrs = [a for a, _, _ in refs]
        assert addrs[1] - addrs[0] == 5 * 64


class TestNewKernels:
    def test_tpcc_transactions_mix_reads_and_writes(self):
        refs = tpcc(num_refs=3000).materialize()
        writes = sum(1 for _, w, _ in refs if w)
        assert 0.2 < writes / 3000 < 0.7

    def test_echo_put_appends_to_heap(self):
        w = echo(footprint_bytes=1 << 20, num_refs=3000)
        heap_base = ((1 << 20) // 64 // 16) * 64
        heap_writes = [a for a, is_w, _ in w.materialize()
                       if is_w and a >= heap_base]
        assert len(heap_writes) > 100

    def test_ycsb_read_fractions_ordered(self):
        counts = {}
        for factory in (ycsb_a, ycsb_b, ycsb_c):
            w = factory(num_refs=4000)
            counts[w.name] = sum(1 for _, is_w, _ in w.materialize() if is_w)
        assert counts["ycsb_a"] > counts["ycsb_b"] > counts["ycsb_c"] == 0

    def test_ycsb_validation_and_naming(self):
        with pytest.raises(ValueError):
            ycsb(1.5)
        assert ycsb(0.75).name == "ycsb_r75"

    def test_ycsb_hot_set_concentration(self):
        refs = ycsb_b(num_refs=5000).materialize()
        unique = {a for a, _, _ in refs}
        assert len(unique) < 2500  # Zipf reuse


class TestSuiteAndHelpers:
    def test_standard_suite_names_unique(self):
        names = [f().name for f in standard_suite(num_refs=10)]
        assert len(names) == len(set(names)) == 15

    def test_zipf_addresses_bounded(self):
        rng = np.random.default_rng(0)
        addrs = zipf_addresses(rng, 100, 1000)
        assert addrs.min() >= 0 and addrs.max() < 100

    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(0)
        addrs = zipf_addresses(rng, 1000, 5000)
        top = (addrs == 0).sum()
        assert top > 500  # head block dominates (~18% of draws)

    def test_workload_dataclass(self):
        w = Workload("x", lambda rng, f, n: iter(()), 1024, 0)
        assert w.materialize() == []


class TestReferenceArrays:
    """The vectorized twin generators must be value-identical to the
    scalar generators — the batched engine consumes either source
    interchangeably, so any drift here is an engine-equivalence bug."""

    VECTORIZED = [
        lambda: ubench(16),
        lambda: ubench(128),
        lambda: lbm(),
        lambda: libquantum(),
        lambda: gcc(),
        lambda: milc(),
    ]

    @pytest.mark.parametrize("factory", VECTORIZED)
    def test_arrays_match_generator_stream(self, factory):
        workload = factory()
        workload.num_refs = 2000
        arrays = workload.reference_arrays()
        assert arrays is not None
        addresses, writes, gaps = arrays
        assert addresses.dtype == np.int64
        assert writes.dtype == bool
        assert gaps.dtype == np.int64
        stream = workload.materialize()
        assert len(stream) == len(addresses) == 2000
        for i, (address, is_write, gap) in enumerate(stream):
            assert addresses[i] == address
            assert writes[i] == bool(is_write)
            assert gaps[i] == gap

    @pytest.mark.parametrize(
        "factory",
        [lambda: mcf(), lambda: ctree(), lambda: hashmap(),
         lambda: pmemkv(0.5), lambda: ycsb_a()],
    )
    def test_stateful_workloads_stay_scalar(self, factory):
        """Sequential/stateful generators have no vectorized twin; the
        engine must fall back to draining the generator."""
        assert factory().reference_arrays() is None

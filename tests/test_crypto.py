"""Unit and property tests for the crypto substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CACHELINE_BYTES, MAC_BYTES
from repro.crypto import CounterModeEngine, MacEngine, Prf, xor_bytes


@pytest.fixture
def prf():
    return Prf.generate(np.random.default_rng(7))


class TestPrf:
    def test_deterministic_for_same_inputs(self, prf):
        assert prf.evaluate(b"a", b"b") == prf.evaluate(b"a", b"b")

    def test_distinct_parts_distinct_output(self, prf):
        assert prf.evaluate(b"ab", b"c") != prf.evaluate(b"a", b"bc")

    def test_key_separation(self):
        p1 = Prf.generate(np.random.default_rng(1))
        p2 = Prf.generate(np.random.default_rng(2))
        assert p1.evaluate(b"x") != p2.evaluate(b"x")

    def test_variable_length_output(self, prf):
        long = prf.evaluate(b"x", length=100)
        assert len(long) == 100
        assert long[:32] == prf.evaluate(b"x", length=32)

    def test_otp_binds_address_and_counter(self, prf):
        base = prf.one_time_pad(0x1000, 5, 64)
        assert base != prf.one_time_pad(0x1040, 5, 64)
        assert base != prf.one_time_pad(0x1000, 6, 64)
        assert base == prf.one_time_pad(0x1000, 5, 64)

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            Prf(b"short")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            Prf("not-bytes" * 4)

    def test_rejects_negative_inputs(self, prf):
        with pytest.raises(ValueError):
            prf.one_time_pad(-1, 0, 64)
        with pytest.raises(ValueError):
            prf.one_time_pad(0, -1, 64)
        with pytest.raises(ValueError):
            prf.evaluate(b"x", length=0)

    def test_generate_with_rng_is_deterministic(self):
        k1 = Prf.generate(np.random.default_rng(42)).key
        k2 = Prf.generate(np.random.default_rng(42)).key
        assert k1 == k2


class TestXorBytes:
    def test_xor_roundtrip(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x0f"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")


class TestCounterMode:
    @pytest.fixture
    def engine(self, prf):
        return CounterModeEngine(prf)

    def test_roundtrip(self, engine):
        pt = bytes(range(64))
        ct = engine.encrypt(pt, address=0x40, counter=3)
        assert ct != pt
        assert engine.decrypt(ct, address=0x40, counter=3) == pt

    def test_wrong_counter_garbles(self, engine):
        pt = bytes(64)
        ct = engine.encrypt(pt, address=0, counter=1)
        assert engine.decrypt(ct, address=0, counter=2) != pt

    def test_wrong_address_garbles(self, engine):
        pt = bytes(64)
        ct = engine.encrypt(pt, address=0, counter=1)
        assert engine.decrypt(ct, address=64, counter=1) != pt

    def test_same_plaintext_different_counter_differs(self, engine):
        pt = b"\xaa" * 64
        assert engine.encrypt(pt, 0, 1) != engine.encrypt(pt, 0, 2)

    def test_block_size_enforced(self, engine):
        with pytest.raises(ValueError):
            engine.encrypt(b"short", 0, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.binary(min_size=CACHELINE_BYTES, max_size=CACHELINE_BYTES),
        address=st.integers(min_value=0, max_value=2**48),
        counter=st.integers(min_value=0, max_value=2**64),
    )
    def test_property_roundtrip(self, data, address, counter):
        engine = CounterModeEngine(Prf(b"k" * 32))
        ct = engine.encrypt(data, address, counter)
        assert engine.decrypt(ct, address, counter) == data


class TestMacEngine:
    @pytest.fixture
    def mac(self):
        return MacEngine.generate(np.random.default_rng(11))

    def test_mac_is_64_bits(self, mac):
        assert len(mac.compute(b"hello")) == MAC_BYTES

    def test_verify_accepts_valid(self, mac):
        tag = mac.compute(b"payload", b"tweak")
        assert mac.verify(tag, b"payload", b"tweak")

    def test_verify_rejects_tampered_payload(self, mac):
        tag = mac.compute(b"payload")
        assert not mac.verify(tag, b"payloae")

    def test_verify_rejects_wrong_length_tag(self, mac):
        assert not mac.verify(b"\x00" * 4, b"payload")

    def test_data_mac_binds_all_inputs(self, mac):
        ct = b"\x55" * 64
        base = mac.data_mac(ct, address=64, counter=9)
        assert base != mac.data_mac(ct, address=128, counter=9)
        assert base != mac.data_mac(ct, address=64, counter=10)
        assert base != mac.data_mac(b"\x56" + ct[1:], address=64, counter=9)

    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(max_size=128), flip=st.integers(min_value=0))
    def test_property_single_bit_flip_detected(self, payload, flip):
        mac = MacEngine(Prf(b"m" * 32))
        if not payload:
            return
        tag = mac.compute(payload)
        idx = flip % (len(payload) * 8)
        tampered = bytearray(payload)
        tampered[idx // 8] ^= 1 << (idx % 8)
        assert not mac.verify(tag, bytes(tampered))

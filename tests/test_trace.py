"""Tests for trace capture, persistence, statistics, and mixing."""

import pytest

from repro.sim import SecureSystem, SystemConfig
from repro.workloads import Trace, interleave, libquantum, ubench, ycsb_a


@pytest.fixture
def small_trace():
    return Trace.from_workload(ubench(64, footprint_bytes=1 << 16, num_refs=200))


class TestTrace:
    def test_from_workload_materializes(self, small_trace):
        assert len(small_trace) == 200
        assert small_trace.name == "ubench64"

    def test_iteration_yields_triples(self, small_trace):
        address, is_write, gap = next(iter(small_trace))
        assert isinstance(address, int)
        assert isinstance(is_write, bool)
        assert isinstance(gap, int)

    def test_as_workload_replays_identically(self, small_trace):
        replay = small_trace.as_workload()
        assert list(replay.references()) == small_trace.references

    def test_as_workload_runs_in_simulator(self, small_trace):
        system = SecureSystem("baseline", config=SystemConfig.scaled(16))
        result = system.run(small_trace.as_workload())
        assert result.memory_requests == 200

    def test_save_load_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.txt"
        small_trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == small_trace.name
        assert loaded.references == small_trace.references

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("64 X 1\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# trace: custom\n\n128 W 3\n64 R 0\n")
        trace = Trace.load(path)
        assert trace.name == "custom"
        assert trace.references == [(128, True, 3), (64, False, 0)]


class TestTraceStats:
    def test_empty_trace(self):
        stats = Trace("empty", []).stats()
        assert stats.references == 0
        assert stats.write_fraction == 0.0

    def test_ubench_characteristics(self):
        trace = Trace.from_workload(
            ubench(64, footprint_bytes=1 << 20, num_refs=1000)
        )
        stats = trace.stats()
        assert stats.write_fraction == pytest.approx(0.5)
        assert stats.sequential_fraction > 0.9  # pure sweep
        assert stats.unique_blocks == 1000

    def test_libquantum_is_streaming(self):
        stats = Trace.from_workload(libquantum(num_refs=1000)).stats()
        assert stats.sequential_fraction > 0.95
        assert stats.write_fraction < 0.1

    def test_ycsb_is_skewed(self):
        stats = Trace.from_workload(ycsb_a(num_refs=3000)).stats()
        assert stats.top_block_share > 0.05  # Zipf head
        assert stats.sequential_fraction < 0.5

    def test_footprint_matches_unique_blocks(self, small_trace):
        stats = small_trace.stats()
        assert stats.footprint_bytes == stats.unique_blocks * 64


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace("a", [(0, False, 0), (64, False, 0)])
        b = Trace("b", [(128, True, 0), (192, True, 0)])
        mix = interleave([a, b])
        assert mix.references == [
            (0, False, 0), (128, True, 0), (64, False, 0), (192, True, 0)
        ]

    def test_chunked_interleave(self):
        a = Trace("a", [(0, False, 0)] * 4)
        b = Trace("b", [(64, True, 0)] * 2)
        mix = interleave([a, b], chunk=2)
        kinds = [w for _, w, _ in mix.references]
        assert kinds == [False, False, True, True, False, False]

    def test_uneven_lengths_all_consumed(self):
        a = Trace("a", [(0, False, 0)] * 5)
        b = Trace("b", [(64, True, 0)] * 2)
        mix = interleave([a, b])
        assert len(mix) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave([])
        with pytest.raises(ValueError):
            interleave([Trace("a", [])], chunk=0)

    def test_mix_runs_in_simulator(self):
        a = Trace.from_workload(ubench(64, footprint_bytes=1 << 18, num_refs=300))
        b = Trace.from_workload(ycsb_a(footprint_bytes=1 << 18, num_refs=300))
        mix = interleave([a, b], name="ubench+ycsb")
        system = SecureSystem("src", config=SystemConfig.scaled(16))
        result = system.run(mix.as_workload(footprint_bytes=1 << 18))
        assert result.memory_requests == 600
        assert result.workload == "ubench+ycsb"


class TestLoadExternal:
    """External/recorded trace ingestion: native, generic, and
    multi-core interleaved captures through one frontend."""

    FIXTURE = "tests/fixtures/interleaved.trace"

    def test_native_format_roundtrips(self, small_trace, tmp_path):
        from repro.workloads import load_external

        path = tmp_path / "native.trace"
        small_trace.save(path)
        loaded = load_external(path)
        assert loaded.references == small_trace.references

    def test_generic_two_field_lines(self, tmp_path):
        from repro.workloads import load_external

        path = tmp_path / "generic.trace"
        path.write_text(
            "// recorded capture\n"
            "R 0x1000\n"
            "W 0x1040\n"
            "0x1080 W\n"
            "write 4096\n"
            "read, 0x1000\n"
        )
        trace = load_external(path)
        assert trace.references == [
            (0x1000, False, 0), (0x1040, True, 0), (0x1080, True, 0),
            (4096, True, 0), (0x1000, False, 0),
        ]

    def test_multicore_fixture_demuxes_round_robin(self):
        from repro.workloads import load_external

        trace = load_external(self.FIXTURE)
        assert trace.name == "interleaved-sample"
        assert len(trace) == 20
        # Round-robin: core 0 and core 1 references alternate.
        cores = [0 if a < 0x4000 else 1 for a, _, _ in trace.references]
        assert cores == [0, 1] * 10

    def test_multicore_chunked(self):
        from repro.workloads import load_external

        trace = load_external(self.FIXTURE, chunk=2)
        cores = [0 if a < 0x4000 else 1 for a, _, _ in trace.references]
        assert cores[:8] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_explicit_multicore_decimal_addresses(self, tmp_path):
        from repro.workloads import load_external

        path = tmp_path / "decimal.trace"
        path.write_text("0 R 64\n1 W 128\n0 W 192\n1 R 256\n")
        trace = load_external(path, fmt="multicore")
        assert trace.references == [
            (64, False, 0), (128, True, 0), (192, True, 0), (256, False, 0),
        ]
        # The same lines parse as native (addr R/W gap) by default.
        native = load_external(path)
        assert native.references[0] == (0, False, 64)

    def test_malformed_lines_rejected(self, tmp_path):
        from repro.workloads import load_external

        for bad in ("X 0x1000\n", "R W 0x10\n", "0x10 R extra 0x20 4\n",
                    "R nonsense\n"):
            path = tmp_path / "bad.trace"
            path.write_text(bad)
            with pytest.raises(ValueError):
                load_external(path)
        path.write_text("# only comments\n")
        with pytest.raises(ValueError, match="no references"):
            load_external(path)
        with pytest.raises(ValueError, match="unknown trace format"):
            load_external(path, fmt="exotic")

    def test_trace_workload_runs_in_simulator(self):
        from repro.workloads import trace_workload

        workload = trace_workload(self.FIXTURE)
        system = SecureSystem("src", config=SystemConfig.scaled(16))
        result = system.run(workload)
        assert result.memory_requests == 20
        assert result.workload == "interleaved-sample"

    def test_trace_workload_spec_is_picklable(self):
        import pickle

        from repro.workloads import make_workload

        spec = ("trace_workload", (self.FIXTURE,), {"chunk": 2})
        workload = make_workload(pickle.loads(pickle.dumps(spec)))
        assert workload.num_refs == 20

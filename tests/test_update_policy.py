"""Tests for the eager vs lazy tree-update policies (Section 2.5)."""

import numpy as np
import pytest

from repro.controller import SecureMemoryController
from repro.recovery import RecoveryManager

KB = 1024
MB = 1024 * KB


def make(policy, data_bytes=4 * MB, cache_kb=16, seed=3):
    return SecureMemoryController(
        data_bytes,
        metadata_cache_bytes=cache_kb * KB,
        update_policy=policy,
        rng=np.random.default_rng(seed),
    )


def storm(ctrl, ops=800, seed=9):
    rng = np.random.default_rng(seed)
    expect = {}
    for _ in range(ops):
        block = int(rng.integers(0, ctrl.num_data_blocks))
        data = bytes(int(x) for x in rng.integers(0, 256, 64))
        ctrl.write(block, data)
        expect[block] = data
    return expect


class TestEagerUpdates:
    def test_policy_validated(self):
        with pytest.raises(ValueError):
            make("sometimes")

    def test_roundtrip(self):
        ctrl = make("eager")
        expect = storm(ctrl, ops=400)
        for block, data in expect.items():
            assert ctrl.read(block).data == data

    def test_eager_writes_whole_branch_per_write(self):
        """One isolated write persists data + MAC + counter + sidecar +
        every tree level above — the eager write amplification."""
        ctrl = make("eager")
        ctrl.write(0, bytes(64))
        w = ctrl.stats.nvm_writes_by_kind
        num_levels = ctrl.amap.num_levels
        assert w["data"] == 1
        assert w["mac"] == 1
        assert w["counter"] == 1
        assert w["tree"] == num_levels - 1
        assert w.get("shadow", 0) == 0  # no tracking needed

    def test_eager_nvm_never_stale(self):
        """After any write burst the NVM copy of every touched counter
        equals the cached copy (no dirty metadata anywhere)."""
        ctrl = make("eager")
        storm(ctrl, ops=300)
        ctrl.wpq.drain_all()
        dirty = [1 for *_, d in ctrl.metadata_cache.resident() if d]
        assert not dirty

    def test_eager_crash_needs_no_recovery_work(self):
        ctrl = make("eager")
        expect = storm(ctrl, ops=500)
        image = ctrl.crash()
        recovered, report = RecoveryManager(image).recover()
        assert report.entries_scanned == 0
        assert report.counters_recovered == 0
        for block, data in expect.items():
            assert recovered.read(block).data == data

    def test_eager_more_writes_than_lazy_on_deep_tree(self):
        """The paper's reason for lazy update: eager write traffic
        scales with tree depth."""
        eager = make("eager", data_bytes=16 * MB, cache_kb=64)
        lazy = make("lazy", data_bytes=16 * MB, cache_kb=64)
        for ctrl in (eager, lazy):
            rng = np.random.default_rng(4)
            for _ in range(600):
                block = int(rng.integers(0, ctrl.num_data_blocks))
                ctrl.write(block, bytes(64))
        assert eager.stats.total_nvm_writes > 1.3 * lazy.stats.total_nvm_writes

    def test_eager_verifies_cleanly(self):
        ctrl = make("eager")
        storm(ctrl, ops=300)
        assert ctrl.verify_system() == []

    def test_eager_with_cloning(self):
        from repro.core import make_controller

        ctrl = make_controller(
            "src",
            4 * MB,
            metadata_cache_bytes=16 * KB,
            update_policy="eager",
            rng=np.random.default_rng(1),
        )
        expect = storm(ctrl, ops=300)
        # Clones are written on every persist in eager mode.
        assert ctrl.stats.nvm_writes_by_kind["clone"] > 0
        for block, data in expect.items():
            assert ctrl.read(block).data == data

    def test_crash_image_preserves_policy(self):
        ctrl = make("eager")
        storm(ctrl, ops=50)
        image = ctrl.crash()
        assert image.update_policy == "eager"
        recovered, __ = RecoveryManager(image).recover()
        assert recovered.update_policy == "eager"

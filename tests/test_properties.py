"""System-level property tests (hypothesis).

Two invariants define this system's correctness:

1. **Linearizable persistence** — against a model dict, any sequence of
   writes/reads/flushes/crash-recoveries returns exactly the last
   written value for every block.
2. **No silent corruption** — whatever bits an attacker or fault flips
   in NVM, a read either returns the correct plaintext (possibly via a
   clone repair) or raises; it never returns wrong data as if valid.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.controller import (
    DataPoisonedError,
    IntegrityError,
    SecureMemoryController,
)
from repro.core import make_controller
from repro.recovery import OsirisRecovery, RecoveryManager

KB = 1024

# One op: (kind, block, value)
OPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "flush", "crash"]),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=60,
)


def _apply_ops(ctrl, ops, model, recover):
    for kind, block, value in ops:
        block %= ctrl.num_data_blocks
        if kind == "write":
            data = bytes([value]) * 64
            ctrl.write(block, data)
            model[block] = data
        elif kind == "read":
            expected = model.get(block, bytes(64))
            assert ctrl.read(block).data == expected
        elif kind == "flush":
            ctrl.flush()
        else:  # crash
            ctrl = recover(ctrl.crash())
    return ctrl


class TestLinearizablePersistence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
    def test_toc_model_agreement(self, ops, seed):
        ctrl = SecureMemoryController(
            64 * KB, metadata_cache_bytes=1 * KB,
            rng=np.random.default_rng(seed),
        )
        model = {}
        ctrl = _apply_ops(
            ctrl, ops, model,
            recover=lambda image: RecoveryManager(image).recover()[0],
        )
        for block, data in model.items():
            assert ctrl.read(block).data == data

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
    def test_bmt_model_agreement(self, ops, seed):
        ctrl = SecureMemoryController(
            64 * KB, metadata_cache_bytes=1 * KB, integrity_mode="bmt",
            rng=np.random.default_rng(seed),
        )
        model = {}
        ctrl = _apply_ops(
            ctrl, ops, model,
            recover=lambda image: OsirisRecovery(image).recover()[0],
        )
        for block, data in model.items():
            assert ctrl.read(block).data == data

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
    def test_src_model_agreement(self, ops, seed):
        ctrl = make_controller(
            "src", 64 * KB, metadata_cache_bytes=1 * KB,
            rng=np.random.default_rng(seed),
        )
        model = {}
        ctrl = _apply_ops(
            ctrl, ops, model,
            recover=lambda image: RecoveryManager(image).recover()[0],
        )
        for block, data in model.items():
            assert ctrl.read(block).data == data


class TestNoSilentCorruption:
    """Flip arbitrary bits anywhere in NVM: reads must be right or raise."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheme=st.sampled_from(["baseline", "src"]),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.integers(min_value=0, max_value=511),
            ),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_corruption_never_silent(self, scheme, flips, seed):
        ctrl = make_controller(
            scheme, 64 * KB, metadata_cache_bytes=1 * KB,
            rng=np.random.default_rng(seed),
        )
        rng = np.random.default_rng(seed + 1)
        model = {}
        for _ in range(120):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(block, data)
            model[block] = data
        ctrl.flush()
        ctrl.metadata_cache.flush_all()  # force NVM re-fetches

        touched = ctrl.nvm.touched_addresses()
        for pick, bit in flips:
            address = touched[pick % len(touched)]
            ctrl.nvm.flip_bits(address, [bit])

        for block, data in model.items():
            try:
                result = ctrl.read(block)
            except (IntegrityError, DataPoisonedError):
                continue  # detected: acceptable outcome
            assert result.data == data, "silent corruption!"

"""Tests for the BMT integrity mode and Osiris recovery.

The BMT is the paper's contrast case (Sections 2.5 / 6.1): intermediate
nodes are plain hash nodes, recomputable from their children — so an
error in an intermediate node is repairable *without* clones, unlike
the ToC.  Counters remain non-recomputable in both modes, which is why
Soteria's counter cloning still matters under BMT.
"""

import numpy as np
import pytest

from repro.controller import (
    IntegrityError,
    RecoveryError,
    SecureMemoryController,
)
from repro.core import make_controller
from repro.recovery import OsirisRecovery, RecoveryManager
from repro.tree import BmtNode, ZERO_DIGEST

KB = 1024


def make(data_kb=256, cache_kb=4, seed=7, **kwargs):
    return SecureMemoryController(
        data_kb * KB,
        metadata_cache_bytes=cache_kb * KB,
        integrity_mode="bmt",
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def storm(ctrl, ops=1000, seed=3):
    rng = np.random.default_rng(seed)
    expect = {}
    for _ in range(ops):
        block = int(rng.integers(0, ctrl.num_data_blocks))
        data = bytes(int(x) for x in rng.integers(0, 256, 64))
        ctrl.write(block, data)
        expect[block] = data
    return expect


class TestBmtNode:
    def test_roundtrip(self):
        node = BmtNode()
        node.set_digest(3, b"12345678")
        assert BmtNode.from_bytes(node.to_bytes()) == node

    def test_initial_zero(self):
        assert BmtNode().digest(0) == ZERO_DIGEST

    def test_validation(self):
        with pytest.raises(ValueError):
            BmtNode(digests=[b"x"] * 8)
        with pytest.raises(ValueError):
            BmtNode(digests=[ZERO_DIGEST] * 7)
        with pytest.raises(IndexError):
            BmtNode().digest(8)
        with pytest.raises(ValueError):
            BmtNode().set_digest(0, b"short")
        with pytest.raises(ValueError):
            BmtNode.from_bytes(b"short")

    def test_copy_independent(self):
        node = BmtNode()
        dup = node.copy()
        node.set_digest(0, b"AAAAAAAA")
        assert dup.digest(0) == ZERO_DIGEST


class TestBmtDatapath:
    def test_roundtrip(self):
        ctrl = make()
        expect = storm(ctrl, ops=800)
        for block, data in expect.items():
            assert ctrl.read(block).data == data

    def test_roundtrip_survives_flush(self):
        ctrl = make()
        expect = storm(ctrl, ops=500)
        ctrl.flush()
        for block, data in expect.items():
            assert ctrl.read(block).data == data

    def test_no_shadow_or_sidecar_traffic(self):
        ctrl = make()
        storm(ctrl, ops=500)
        w = ctrl.stats.nvm_writes_by_kind
        assert w.get("shadow", 0) == 0
        assert w.get("counter_mac", 0) == 0
        r = ctrl.stats.nvm_reads_by_kind
        assert r.get("counter_mac", 0) == 0

    def test_tampered_data_detected(self):
        ctrl = make()
        ctrl.write(0, b"\x42" * 64)
        ctrl.flush()
        ctrl.nvm.flip_bits(ctrl.amap.data_addr(0), [0])
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_tampered_counter_detected(self):
        ctrl = make()
        storm(ctrl, ops=300)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        target = next(
            i for i in range(ctrl.amap.level_sizes[0])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(1, target), [5])
        with pytest.raises(IntegrityError):
            ctrl.read(target * 64)

    def test_replayed_counter_detected(self):
        """Rolling back a counter block (with consistent old data and
        MACs) fails against the parent digest — the BMT's freshness
        comes from the always-propagated digest chain."""
        ctrl = make()
        ctrl.write(0, b"\x01" * 64)
        ctrl.flush()
        old_counter = ctrl.nvm.read_block(ctrl.amap.node_addr(1, 0))
        old_data = ctrl.nvm.read_block(ctrl.amap.data_addr(0))
        old_mac = ctrl.nvm.read_block(ctrl.amap.mac_addr(0))
        ctrl.write(0, b"\x02" * 64)
        ctrl.flush()
        ctrl.nvm.write_block(ctrl.amap.node_addr(1, 0), old_counter)
        ctrl.nvm.write_block(ctrl.amap.data_addr(0), old_data)
        ctrl.nvm.write_block(ctrl.amap.mac_addr(0), old_mac)
        ctrl.metadata_cache.flush_all()
        with pytest.raises(IntegrityError):
            ctrl.read(0)

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            SecureMemoryController(64 * KB, integrity_mode="merkle")


class TestBmtRecomputation:
    def _corrupt_l2(self, ctrl, expect):
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        target = next(
            i for i in range(ctrl.amap.level_sizes[1])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(2, i))
        )
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(2, target), [9])
        return next(
            bi for bi in expect
            if bi in ctrl.amap.data_blocks_covered(2, target)
        )

    def test_corrupt_node_recomputed_without_clones(self):
        """The defining BMT property: no clones, yet the intermediate
        node repairs by recomputation from its children."""
        ctrl = make()
        expect = storm(ctrl, ops=1500)
        victim = self._corrupt_l2(ctrl, expect)
        assert ctrl.read(victim).data == expect[victim]
        assert ctrl.stats.bmt_recomputations == 1

    def test_toc_same_corruption_is_fatal(self):
        """Control: the identical experiment under ToC (no clones)
        loses the subtree — the paper's motivating asymmetry."""
        ctrl = SecureMemoryController(
            256 * KB, metadata_cache_bytes=4 * KB,
            rng=np.random.default_rng(7),
        )
        expect = storm(ctrl, ops=1500)
        victim = self._corrupt_l2(ctrl, expect)
        with pytest.raises(IntegrityError):
            ctrl.read(victim)

    def test_corrupt_counter_still_fatal_without_clones(self):
        """Counters have no children: BMT cannot recompute them."""
        ctrl = make()
        storm(ctrl, ops=300)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        target = next(
            i for i in range(ctrl.amap.level_sizes[0])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(1, target), [2])
        with pytest.raises(IntegrityError):
            ctrl.read(target * 64)

    def test_soteria_clones_save_corrupt_counter_in_bmt_mode(self):
        """Section 6.1: 'if BMT is used, similar concepts can be
        applied to the encryption counters.'"""
        ctrl = make_controller(
            "src", 256 * KB, metadata_cache_bytes=4 * KB,
            integrity_mode="bmt", rng=np.random.default_rng(7),
        )
        expect = storm(ctrl, ops=300)
        ctrl.flush()
        ctrl.metadata_cache.flush_all()
        target = next(
            i for i in range(ctrl.amap.level_sizes[0])
            if ctrl.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        ctrl.nvm.flip_bits(ctrl.amap.node_addr(1, target), [2])
        victim = next(bi for bi in expect if bi // 64 == target)
        assert ctrl.read(victim).data == expect[victim]
        assert ctrl.stats.clone_repairs == 1


class TestOsirisRecovery:
    def test_dirty_crash_recovers(self):
        ctrl = make(seed=11)
        expect = storm(ctrl, ops=1200, seed=12)
        image = ctrl.crash()
        recovered, report = OsirisRecovery(image).recover()
        assert report.counter_blocks_scanned > 0
        for block, data in expect.items():
            assert recovered.read(block).data == data
        assert recovered.verify_system() == []

    def test_recovery_scans_every_written_counter(self):
        """Osiris is exhaustive where Anubis is targeted — the paper's
        recovery-time contrast."""
        ctrl = make(seed=13)
        storm(ctrl, ops=800, seed=14)
        image = ctrl.crash()
        __, report = OsirisRecovery(image).recover()
        touched = sum(
            1 for i in range(ctrl.amap.level_sizes[0])
            if image.nvm.is_touched(ctrl.amap.node_addr(1, i))
        )
        assert report.counter_blocks_scanned >= touched
        assert report.data_blocks_read > 0

    def test_root_mismatch_detected(self):
        ctrl = make(seed=15)
        storm(ctrl, ops=300, seed=16)
        image = ctrl.crash()
        image.trusted.root = BmtNode()  # lost/forged root register
        with pytest.raises(RecoveryError):
            OsirisRecovery(image).recover()

    def test_rollback_replay_detected_at_recovery(self):
        """Replaying a fully consistent old NVM snapshot around a crash
        is caught by the root-register comparison."""
        ctrl = make(seed=17)
        ctrl.write(0, b"\x01" * 64)
        ctrl.flush()
        snapshot = {
            addr: ctrl.nvm.read_block(addr)
            for addr in ctrl.nvm.touched_addresses()
        }
        ctrl.write(0, b"\x02" * 64)
        ctrl.flush()
        image = ctrl.crash()
        # Attacker restores the old snapshot wholesale.
        for addr, raw in snapshot.items():
            image.nvm.write_block(addr, raw)
        with pytest.raises(RecoveryError):
            OsirisRecovery(image).recover()

    def test_crash_work_crash_again(self):
        ctrl = make(seed=18)
        expect = storm(ctrl, ops=600, seed=19)
        recovered, __ = OsirisRecovery(ctrl.crash()).recover()
        expect.update(storm(recovered, ops=400, seed=20))
        recovered2, __ = OsirisRecovery(recovered.crash()).recover()
        for block, data in expect.items():
            assert recovered2.read(block).data == data

    def test_mode_guards(self):
        toc = SecureMemoryController(64 * KB, rng=np.random.default_rng(1))
        toc_image = toc.crash()
        with pytest.raises(RecoveryError):
            OsirisRecovery(toc_image)
        bmt = make(seed=21)
        bmt_image = bmt.crash()
        with pytest.raises(RecoveryError):
            RecoveryManager(bmt_image).recover()

"""Quarantine-registry edge cases under compound scenarios:
re-quarantine idempotency, quarantine across and during recovery, and
exhaustion degrading gracefully instead of crashing."""

import numpy as np
import pytest

from repro.controller import MetadataScrubber, QuarantinedError
from repro.core import make_controller
from repro.faults import FaultInjector, region_addresses
from repro.recovery import RecoveryManager

KB = 1024


def make_ctrl(scheme="src", seed=7, data_bytes=64 * KB):
    ctrl = make_controller(
        scheme, data_bytes, functional_crypto=True, quarantine=True,
        rng=np.random.default_rng(seed),
    )
    for block in range(ctrl.num_data_blocks):
        ctrl.write(block, bytes([block % 251]) * 64)
    ctrl.flush()
    return ctrl


class TestRequarantine:
    def test_requarantine_is_idempotent(self):
        ctrl = make_ctrl()
        first = ctrl.quarantine_node(1, 3, "first strike")
        again = ctrl.quarantine_node(1, 3, "second strike")
        assert first is not None
        assert again is None
        assert ctrl.stats.quarantined_nodes == 1
        assert len(ctrl.quarantine) == 1
        # The original entry (and its reason) survives the re-strike.
        assert ctrl.quarantine.entries[0].reason == "first strike"

    def test_requarantine_does_not_double_count_bytes(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 0, "x")
        once = ctrl.stats.quarantined_bytes
        ctrl.quarantine_node(1, 0, "x")
        assert ctrl.stats.quarantined_bytes == once

    def test_nested_ranges_count_overlap_once(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 0, "counter")      # nested inside...
        ctrl.quarantine_node(2, 0, "its parent")   # ...the tree node
        covered = ctrl.amap.data_blocks_covered(2, 0)
        assert ctrl.quarantine.quarantined_data_bytes == len(covered) * 64

    def test_scrubber_requarantine_stays_consistent(self):
        # The scrubber quarantining a node the controller already
        # quarantined on a demand access must not double-book.
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 2, "demand access")
        scrubber = MetadataScrubber(ctrl, interval=1, max_retries=1)
        ctrl.nvm.poison_block(ctrl.amap.node_addr(1, 2))
        scrubber.settle()
        assert ctrl.stats.quarantined_nodes == 1


class TestQuarantineAcrossRecovery:
    def test_quarantine_entries_do_not_survive_a_crash(self):
        # Volatile registry, persistent damage: the crash drops the
        # entries; recovery rediscovers what is actually dead.
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 1, "pre-crash")
        assert len(ctrl.quarantine) == 1
        recovered, _ = RecoveryManager(ctrl.crash()).recover()
        assert recovered.quarantine is not None
        assert len(recovered.quarantine) == 0

    def test_quarantine_during_recovery_window(self):
        # A node can be quarantined on the recovered controller before
        # any workload access — the "during recovery" RAS window.
        ctrl = make_ctrl()
        recovered, _ = RecoveryManager(ctrl.crash()).recover()
        entry = recovered.quarantine_node(1, 0, "post-recovery triage")
        assert entry is not None
        blocks = recovered.amap.data_blocks_covered(1, 0)
        with pytest.raises(QuarantinedError):
            recovered.read(blocks.start)
        # Uncovered blocks still serve reads.
        outside = blocks.stop % recovered.num_data_blocks
        if not recovered.quarantine.covers(outside):
            assert recovered.read(outside).data == bytes([outside % 251]) * 64

    def test_quarantined_then_recovered_then_requarantined(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 4, "first life")
        recovered, _ = RecoveryManager(ctrl.crash()).recover()
        entry = recovered.quarantine_node(1, 4, "second life")
        assert entry is not None          # registry was reset, not stale
        assert recovered.stats.quarantined_nodes == 1


class TestExhaustion:
    """Quarantine exhaustion must degrade gracefully: typed errors and
    deferred faults, never a harness crash."""

    def test_every_counter_quarantined_still_serves_typed_errors(self):
        ctrl = make_ctrl()
        for index in range(ctrl.amap.level_sizes[0]):
            ctrl.quarantine_node(1, index, "exhaustion")
        assert len(ctrl.quarantine) == ctrl.amap.level_sizes[0]
        for block in range(0, ctrl.num_data_blocks,
                           max(1, ctrl.num_data_blocks // 8)):
            with pytest.raises(QuarantinedError):
                ctrl.read(block)
        assert ctrl.stats.quarantined_accesses > 0

    def test_injector_defers_into_exhausted_region(self):
        ctrl = make_ctrl()
        for index in range(ctrl.amap.level_sizes[0]):
            ctrl.quarantine_node(1, index, "exhaustion")
        assert region_addresses(ctrl, "counter",
                                exclude_quarantined=True) == []
        injector = FaultInjector(
            ctrl, targets=("counter",), seed=3, num_faults=5,
            horizon_ops=10, exclude_quarantined=True,
        )
        injector.drain()
        summary = injector.summary()
        assert summary["fired"] == 0
        assert summary["deferred"] == 5
        assert summary["poisoned_blocks"] == 0

    def test_writes_to_quarantined_coverage_raise_typed(self):
        ctrl = make_ctrl()
        ctrl.quarantine_node(1, 0, "exhaustion")
        block = ctrl.amap.data_blocks_covered(1, 0).start
        with pytest.raises(QuarantinedError):
            ctrl.write(block, bytes(64))

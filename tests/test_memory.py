"""Tests for the NVM device, DIMM geometry, and WPQ."""

import pytest

from repro.memory import DimmGeometry, NvmDevice, WpqFullError, WritePendingQueue


class TestNvmDevice:
    @pytest.fixture
    def nvm(self):
        return NvmDevice(capacity_bytes=1024 * 1024)

    def test_unwritten_reads_zero(self, nvm):
        assert nvm.read_block(0) == bytes(64)

    def test_write_then_read(self, nvm):
        data = bytes(range(64))
        nvm.write_block(128, data)
        assert nvm.read_block(128) == data

    def test_counters_track_traffic(self, nvm):
        nvm.write_block(0, bytes(64))
        nvm.read_block(0)
        nvm.read_block(64)
        assert nvm.write_count == 1
        assert nvm.read_count == 2
        nvm.reset_counters()
        assert nvm.read_count == nvm.write_count == 0

    def test_alignment_enforced(self, nvm):
        with pytest.raises(ValueError):
            nvm.read_block(13)
        with pytest.raises(ValueError):
            nvm.write_block(1, bytes(64))

    def test_capacity_enforced(self, nvm):
        with pytest.raises(ValueError):
            nvm.read_block(nvm.capacity_bytes)
        with pytest.raises(ValueError):
            NvmDevice(capacity_bytes=100)  # not block multiple

    def test_wrong_size_write_rejected(self, nvm):
        with pytest.raises(ValueError):
            nvm.write_block(0, b"short")

    def test_flip_bits(self, nvm):
        nvm.write_block(0, bytes(64))
        nvm.flip_bits(0, [0, 9])
        block = nvm.read_block(0)
        assert block[0] == 0x01
        assert block[1] == 0x02

    def test_flip_bits_out_of_range(self, nvm):
        with pytest.raises(ValueError):
            nvm.flip_bits(0, [64 * 8])

    def test_poison_lifecycle(self, nvm):
        nvm.poison_block(64)
        assert nvm.is_poisoned(64)
        assert 64 in nvm.poisoned_addresses
        nvm.write_block(64, bytes(64))  # re-programming clears poison
        assert not nvm.is_poisoned(64)
        nvm.poison_block(64)
        nvm.clear_poison(64)
        assert not nvm.is_poisoned(64)

    def test_touched_addresses_sorted(self, nvm):
        nvm.write_block(192, bytes(64))
        nvm.write_block(0, bytes(64))
        assert nvm.touched_addresses() == [0, 192]


class TestDimmGeometry:
    def test_table4_defaults(self):
        geo = DimmGeometry()
        assert geo.chips == 18
        assert geo.chips_per_rank == 9
        assert geo.ranks == 2
        assert geo.beats_per_block == 64
        assert geo.blocks_per_row == 64

    def test_total_blocks_consistent(self):
        geo = DimmGeometry()
        assert geo.total_blocks == geo.ranks * geo.banks * geo.rows * geo.blocks_per_row

    def test_block_location_roundtrip_structure(self):
        geo = DimmGeometry()
        rank, bank, row, col = geo.block_location(0)
        assert (rank, bank, row, col) == (0, 0, 0, 0)
        rank, bank, row, col = geo.block_location(geo.blocks_per_rank)
        assert rank == 1

    def test_block_location_unique(self):
        geo = DimmGeometry(banks=2, rows=4, cols=128, chips=18,
                           chips_per_rank=9, ranks=2)
        locations = {geo.block_location(i) for i in range(geo.total_blocks)}
        assert len(locations) == geo.total_blocks

    def test_block_location_bounds(self):
        geo = DimmGeometry()
        with pytest.raises(IndexError):
            geo.block_location(geo.total_blocks)

    def test_chip_ids_of_rank(self):
        geo = DimmGeometry()
        assert geo.chip_ids_of_rank(0) == list(range(9))
        assert geo.chip_ids_of_rank(1) == list(range(9, 18))
        with pytest.raises(IndexError):
            geo.chip_ids_of_rank(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DimmGeometry(chips=17)  # 17 != 9 * 2
        with pytest.raises(ValueError):
            DimmGeometry(data_block_bits=500)  # not bus multiple


class TestWritePendingQueue:
    @pytest.fixture
    def nvm(self):
        return NvmDevice(capacity_bytes=64 * 1024)

    def test_enqueue_and_drain(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=4)
        wpq.enqueue(0, b"\x01" * 64)
        assert len(wpq) == 1
        assert nvm.read_block(0) == bytes(64)  # not yet persisted
        wpq.drain_all()
        assert nvm.read_block(0) == b"\x01" * 64

    def test_enqueue_past_capacity_drains_oldest(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=2)
        wpq.enqueue(0, b"\x01" * 64)
        wpq.enqueue(64, b"\x02" * 64)
        wpq.enqueue(128, b"\x03" * 64)  # forces drain of addr 0
        assert nvm.read_block(0) == b"\x01" * 64
        assert len(wpq) == 2

    def test_atomic_group_fits(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=8)
        wpq.enqueue(0, bytes(64))  # residue entry
        entries = [(64 * i, bytes([i]) * 64) for i in range(1, 8)]
        wpq.enqueue_atomic(entries)
        assert len(wpq) == 8  # residue was drained to make room? No:
        # 1 residue + 7 new = 8 <= capacity, no drain needed.

    def test_atomic_group_drains_residue(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=4)
        wpq.enqueue(0, b"\xaa" * 64)
        wpq.enqueue(64, b"\xbb" * 64)
        entries = [(128 + 64 * i, bytes(64)) for i in range(3)]
        wpq.enqueue_atomic(entries)
        # Two residues, capacity 4, group of 3 -> at least one drained.
        assert nvm.read_block(0) == b"\xaa" * 64
        assert len(wpq) <= 4

    def test_atomic_group_too_large_raises(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=4)
        entries = [(64 * i, bytes(64)) for i in range(5)]
        with pytest.raises(WpqFullError):
            wpq.enqueue_atomic(entries)

    def test_power_loss_flush_persists_everything(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=8)
        for i in range(5):
            wpq.enqueue(64 * i, bytes([i + 1]) * 64)
        flushed = wpq.power_loss_flush()
        assert flushed == 5
        for i in range(5):
            assert nvm.read_block(64 * i) == bytes([i + 1]) * 64

    def test_drain_one_empty_returns_false(self, nvm):
        wpq = WritePendingQueue(nvm)
        assert not wpq.drain_one()

    def test_counters(self, nvm):
        wpq = WritePendingQueue(nvm, capacity=8)
        wpq.enqueue(0, bytes(64))
        wpq.drain_all()
        assert wpq.enqueued_count == 1
        assert wpq.drained_count == 1

    def test_capacity_validation(self, nvm):
        with pytest.raises(ValueError):
            WritePendingQueue(nvm, capacity=0)

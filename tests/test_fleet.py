"""Fault-injection tests for the multi-host campaign fleet.

These exercise the queue + store substrate end to end, spawning real
``repro fleet worker`` subprocesses where process death matters:

* two concurrent workers drain one campaign with exactly-once
  execution, and the merged results are bit-identical to a serial run;
* a worker killed with SIGKILL mid-lease is detected via lease expiry
  and its cell is reclaimed and recomputed — the merged report is
  still bit-identical;
* a torn lease file (worker died mid-write) is detected and taken
  over;
* a poisoned cell's classified failure is adopted by later joiners
  without re-executing the cell;
* a bit-flipped store entry is quarantined and recomputed, never
  served.

Execution-count assertions use the ``tests.fleet_helpers`` audit logs:
one appended line per runner *start*, so "served from the store" and
"silently re-executed" are distinguishable on disk.
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.runtime import (
    QueueMismatchError,
    WorkQueue,
    cell_key,
    sweep_fingerprint,
)
from repro.sim import SweepEngine

from tests import fleet_helpers

REPO_ROOT = Path(__file__).resolve().parent.parent


def _publish(queue_dir, cells, runner, ttl=60.0):
    """Publish a campaign manifest the way a sweep command would."""
    fingerprint = sweep_fingerprint([cell_key(c, runner) for c in cells])
    WorkQueue(queue_dir, ttl=ttl).ensure_campaign(cells, runner, fingerprint)


def _spawn_worker(queue_dir, *extra):
    """Start a real ``repro fleet worker`` subprocess on the queue.

    CWD is the repo root so ``tests.fleet_helpers`` (the manifest's
    runner module) resolves to the same module the test imported.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "worker",
         "--queue", str(queue_dir), "--quiet", *extra],
        cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _execution_counts(log_dir, tags):
    """Lines in each per-cell audit log == runner starts for that cell."""
    counts = {}
    for tag in tags:
        path = Path(log_dir) / f"exec-{tag}.log"
        counts[tag] = (len(path.read_text().splitlines())
                       if path.exists() else 0)
    return counts


def _results(outcomes):
    return [(o.ok, o.result) for o in outcomes]


class TestFleetDrain:
    def test_two_workers_drain_bit_identical_to_serial(self, tmp_path):
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        cells = [("tracked", value, str(log_dir)) for value in range(8)]
        queue_dir = tmp_path / "queue"
        _publish(queue_dir, cells, fleet_helpers.tracked_square)

        report_path = tmp_path / "worker0.json"
        workers = [
            _spawn_worker(queue_dir, "--out", str(report_path)),
            _spawn_worker(queue_dir),
        ]
        for proc in workers:
            assert proc.wait(timeout=120) == 0

        # Healthy fleet: every cell executed exactly once across both
        # workers (leases are exclusive; nothing expired).
        assert _execution_counts(log_dir, range(8)) == {
            value: 1 for value in range(8)
        }

        # The worker's report is a normal sweep report.
        report = json.loads(report_path.read_text())
        assert report["schema"] == "sweep/v1"
        assert len(report["cells"]) == 8
        assert all(c["ok"] for c in report["cells"])

        # A late joiner merges the fleet's results purely from the
        # store — bit-identical to a serial run, zero re-execution.
        serial_log = tmp_path / "serial-log"
        serial_log.mkdir()
        serial_cells = [("tracked", v, str(serial_log)) for v in range(8)]
        serial = SweepEngine(
            serial_cells, runner=fleet_helpers.tracked_square, jobs=1
        ).run()

        merger = SweepEngine(cells, runner=fleet_helpers.tracked_square,
                             queue=queue_dir)
        merged = merger.run()
        assert all(o.reused for o in merged)
        assert merger.reused_count == 8
        assert _results(merged) == _results(serial)
        assert _execution_counts(log_dir, range(8)) == {
            value: 1 for value in range(8)
        }
        snap = merger.registry.snapshot()
        assert snap["runtime.store.hits"] == 8
        assert snap["runtime.lease.claims"] == 0

    def test_sigkilled_worker_lease_reclaimed_and_recomputed(self, tmp_path):
        """Kill -9 a worker mid-lease: the lease expires, a survivor
        reclaims it, and the merged results match a serial run."""
        block = tmp_path / "block"
        block.write_text("worker parks inside cell 0 while this exists")
        cells = [("block", 0, str(block))] + [
            ("block", value, str(tmp_path / "absent")) for value in (1, 2, 3)
        ]
        queue_dir = tmp_path / "queue"
        _publish(queue_dir, cells, fleet_helpers.block_while_file_exists,
                 ttl=1.0)

        queue = WorkQueue(queue_dir, ttl=1.0)
        victim_lease = queue.lease_path(
            cell_key(cells[0], fleet_helpers.block_while_file_exists))
        worker = _spawn_worker(queue_dir)
        try:
            deadline = time.time() + 60.0
            while not os.path.exists(victim_lease):
                assert worker.poll() is None, "worker exited before claiming"
                assert time.time() < deadline, "worker never claimed cell 0"
                time.sleep(0.05)
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
        finally:
            if worker.poll() is None:
                worker.kill()
            block.unlink(missing_ok=True)

        # The dead worker's lease file survives it, unrenewed.
        assert os.path.exists(victim_lease)

        survivor = SweepEngine(
            cells, runner=fleet_helpers.block_while_file_exists,
            queue=queue_dir, lease_ttl=1.0,
        )
        outcomes = survivor.run()
        assert all(o.ok for o in outcomes)
        snap = survivor.registry.snapshot()
        assert snap["runtime.lease.expiries"] >= 1
        assert snap["runtime.lease.reclaims"] >= 1
        assert snap["runtime.store.writes"] == 4

        serial = SweepEngine(
            cells, runner=fleet_helpers.block_while_file_exists, jobs=1
        ).run()
        assert _results(outcomes) == _results(serial)

    def test_torn_lease_detected_and_taken_over(self, tmp_path):
        """A lease torn mid-write by a dying worker reads as dead —
        detected, counted, reclaimed, and the cell still completes."""
        cells = [("sq", value) for value in range(3)]
        queue_dir = tmp_path / "queue"
        _publish(queue_dir, cells, fleet_helpers.square)
        queue = WorkQueue(queue_dir)
        torn_path = queue.lease_path(cell_key(cells[1],
                                              fleet_helpers.square))
        with open(torn_path, "wb") as fh:
            fh.write(b'{"schema": "lease/v1", "owner": "dyi')

        engine = SweepEngine(cells, runner=fleet_helpers.square,
                             queue=queue_dir)
        outcomes = engine.run()
        assert all(o.ok for o in outcomes)
        assert [o.result["square"] for o in outcomes] == [0, 1, 4]
        snap = engine.registry.snapshot()
        assert snap["runtime.lease.torn"] == 1
        assert snap["runtime.lease.reclaims"] == 1
        assert snap["runtime.lease.claims"] == 2


class TestPoison:
    def test_poisoned_cell_adopted_without_reexecution(self, tmp_path):
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        cells = [("failneg", -1, str(log_dir)), ("failneg", 2, str(log_dir))]
        queue_dir = tmp_path / "queue"

        first = SweepEngine(cells, runner=fleet_helpers.fail_negative,
                            queue=queue_dir, retries=1)
        first_outcomes = first.run()
        assert not first_outcomes[0].ok
        assert first_outcomes[0].attempts == 2   # retry budget burned once
        assert first_outcomes[1].ok
        assert first.registry.snapshot()["runtime.lease.poisoned"] == 1
        assert _execution_counts(log_dir, [-1, 2]) == {-1: 2, 2: 1}

        # A later joiner adopts the published failure verbatim: same
        # classified outcome, zero additional executions of either cell.
        second = SweepEngine(cells, runner=fleet_helpers.fail_negative,
                             queue=queue_dir, retries=1)
        second_outcomes = second.run()
        assert asdict(second_outcomes[0]) == asdict(first_outcomes[0])
        assert second_outcomes[1].reused
        assert second_outcomes[1].result == first_outcomes[1].result
        assert _execution_counts(log_dir, [-1, 2]) == {-1: 2, 2: 1}
        snap = second.registry.snapshot()
        assert snap["runtime.lease.poisoned"] == 0   # adopted, not re-found
        assert snap["runtime.lease.claims"] == 0


class TestQueueIdentity:
    def test_foreign_campaign_rejected(self, tmp_path):
        """Joining a queue that holds a different experiment is a hard
        error — two campaigns must never interleave."""
        queue_dir = tmp_path / "queue"
        _publish(queue_dir, [("sq", v) for v in range(3)],
                 fleet_helpers.square)
        foreign = SweepEngine([("sq", v) for v in range(5)],
                              runner=fleet_helpers.square, queue=queue_dir)
        with pytest.raises(QueueMismatchError, match="refusing to join"):
            foreign.run()


class TestStoreIntegration:
    def test_warm_store_serves_every_cell(self, tmp_path):
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        cells = [("tracked", value, str(log_dir)) for value in range(5)]
        store_dir = tmp_path / "store"

        cold = SweepEngine(cells, runner=fleet_helpers.tracked_square,
                           store=store_dir).run()
        warm_engine = SweepEngine(cells, runner=fleet_helpers.tracked_square,
                                  store=store_dir)
        warm = warm_engine.run()
        assert all(o.reused for o in warm)
        assert warm_engine.reused_count == 5
        assert _results(warm) == _results(cold)
        assert _execution_counts(log_dir, range(5)) == {
            value: 1 for value in range(5)
        }
        snap = warm_engine.registry.snapshot()
        assert snap["runtime.store.hits"] == 5
        assert snap["runtime.store.misses"] == 0

    def test_corrupt_store_entry_recomputed_not_served(self, tmp_path):
        """End to end: a bit-flipped entry is quarantined, the cell is
        recomputed, and the final results are still bit-identical."""
        cells = [("sq", value) for value in range(4)]
        store_dir = tmp_path / "store"
        cold_engine = SweepEngine(cells, runner=fleet_helpers.square,
                                  store=store_dir)
        cold = cold_engine.run()

        from repro.runtime import ResultStore

        probe = ResultStore(store_dir)
        victim = cell_key(cells[2], fleet_helpers.square)
        path = probe.entry_path(victim)
        with open(path) as fh:
            record = json.load(fh)
        blob = record["payload_b64"]
        middle = len(blob) // 2
        flipped = "A" if blob[middle] != "A" else "B"
        record["payload_b64"] = blob[:middle] + flipped + blob[middle + 1:]
        with open(path, "w") as fh:
            json.dump(record, fh)

        repaired_engine = SweepEngine(cells, runner=fleet_helpers.square,
                                      store=store_dir)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            repaired = repaired_engine.run()
        assert _results(repaired) == _results(cold)
        assert repaired[2].reused is False        # recomputed, not served
        assert sum(o.reused for o in repaired) == 3
        snap = repaired_engine.registry.snapshot()
        assert snap["runtime.store.corrupt"] == 1
        assert snap["runtime.store.hits"] == 3
        assert snap["runtime.store.writes"] == 1  # the republished cell
        assert os.listdir(store_dir / "quarantine")

        # The repaired entry serves cleanly from now on.
        final_engine = SweepEngine(cells, runner=fleet_helpers.square,
                                   store=store_dir)
        final = final_engine.run()
        assert all(o.reused for o in final)
        assert _results(final) == _results(cold)

"""Crash/recovery tests: Anubis shadow replay and Osiris counter trials."""

import numpy as np
import pytest

from repro.controller import RecoveryError, SecureMemoryController
from repro.recovery import RecoveryManager

KB = 1024


def make_ctrl(seed=7, cache_kb=4, data_kb=256, **kwargs):
    return SecureMemoryController(
        data_kb * KB,
        metadata_cache_bytes=cache_kb * KB,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def run_workload(ctrl, ops=1500, seed=3, read_fraction=0.3):
    """Random mixed workload; returns {block: expected plaintext}."""
    rng = np.random.default_rng(seed)
    expect = {}
    for _ in range(ops):
        bi = int(rng.integers(0, ctrl.num_data_blocks))
        if rng.random() < read_fraction and expect:
            ctrl.read(bi)
        else:
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(bi, data)
            expect[bi] = data
    return expect


class TestCleanRecovery:
    def test_recover_after_dirty_crash(self):
        ctrl = make_ctrl()
        expect = run_workload(ctrl)
        image = ctrl.crash()
        recovered, report = RecoveryManager(image).recover()
        assert report.entries_scanned > 0
        for bi, data in expect.items():
            assert recovered.read(bi).data == data

    def test_recovered_system_fully_verifiable(self):
        ctrl = make_ctrl(seed=11)
        run_workload(ctrl, ops=800, seed=5)
        image = ctrl.crash()
        recovered, __ = RecoveryManager(image).recover()
        assert recovered.verify_system() == []

    def test_recovery_uses_osiris_trials(self):
        ctrl = make_ctrl(seed=2)
        # Repeated writes to the same blocks leave counters stale in NVM.
        for rep in range(3):
            for bi in range(50):
                ctrl.write(bi, bytes([rep]) * 64)
        image = ctrl.crash()
        recovered, report = RecoveryManager(image).recover()
        assert report.osiris_trials > 0
        for bi in range(50):
            assert recovered.read(bi).data == bytes([2]) * 64

    def test_recovery_after_clean_flush_is_trivial(self):
        ctrl = make_ctrl(seed=4)
        expect = run_workload(ctrl, ops=400)
        ctrl.flush()
        image = ctrl.crash()
        recovered, report = RecoveryManager(image).recover()
        # Everything was persisted; entries are tombstones or no-ops.
        for bi, data in expect.items():
            assert recovered.read(bi).data == data

    def test_crash_recover_crash_recover(self):
        """Recovery must leave a state from which a second crash also
        recovers (idempotent consistency)."""
        ctrl = make_ctrl(seed=6)
        expect = run_workload(ctrl, ops=600, seed=8)
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        expect.update(run_workload(recovered, ops=400, seed=9))
        recovered2, __ = RecoveryManager(recovered.crash()).recover()
        for bi, data in expect.items():
            assert recovered2.read(bi).data == data

    def test_work_continues_after_recovery(self):
        ctrl = make_ctrl(seed=12)
        run_workload(ctrl, ops=300, seed=1)
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        recovered.write(0, b"\x99" * 64)
        recovered.flush()
        assert recovered.read(0).data == b"\x99" * 64
        assert recovered.verify_system() == []

    def test_recovery_report_counts(self):
        ctrl = make_ctrl(seed=13)
        run_workload(ctrl, ops=1000, seed=14)
        image = ctrl.crash()
        __, report = RecoveryManager(image).recover()
        assert report.counters_recovered > 0
        assert report.entries_scanned >= (
            report.counters_recovered + report.nodes_recovered
        )


class TestDeepTreeRecovery:
    def test_three_level_tree_storm_recovery(self):
        """Regression: with a 3-level tree and a thrashing cache, an
        eviction's shadow tombstone used to be written at drain time —
        after the reused slot already held a live parent's fresh entry,
        which the tombstone then clobbered, silently dropping that
        parent's recovery record."""
        ctrl = SecureMemoryController(
            512 * KB,
            metadata_cache_bytes=8 * KB,
            rng=np.random.default_rng(42),
        )
        rng = np.random.default_rng(43)
        expect = {}
        for _ in range(2000):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(block, data)
            expect[block] = data
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        for block, data in expect.items():
            assert recovered.read(block).data == data
        assert recovered.verify_system() == []

    def test_four_level_tree_storm_recovery(self):
        ctrl = SecureMemoryController(
            4096 * KB,
            metadata_cache_bytes=4 * KB,
            rng=np.random.default_rng(44),
        )
        rng = np.random.default_rng(45)
        expect = {}
        for _ in range(1500):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(block, data)
            expect[block] = data
        recovered, __ = RecoveryManager(ctrl.crash()).recover()
        for block, data in expect.items():
            assert recovered.read(block).data == data


class TestRecoveryFailures:
    def test_corrupt_shadow_entry_fails_baseline_recovery(self):
        """An uncorrectable error in the shadow region defeats Anubis
        recovery when entries are single-copy (the paper's motivation
        for Figure 8b)."""
        ctrl = make_ctrl(seed=21)
        run_workload(ctrl, ops=800, seed=22)
        image = ctrl.crash()
        # Corrupt one written shadow entry.
        target = None
        for slot in range(image.nvm.capacity_bytes and ctrl.amap.shadow_entries):
            addr = ctrl.amap.shadow_entry_addr(slot)
            if image.nvm.is_touched(addr):
                target = addr
                break
        assert target is not None
        image.nvm.flip_bits(target, [100])
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

    def test_shadow_root_mismatch_detected(self):
        """Replaying a whole stale shadow table (or losing the on-chip
        root) is detected by the root comparison."""
        ctrl = make_ctrl(seed=31)
        run_workload(ctrl, ops=500, seed=32)
        image = ctrl.crash()
        image.trusted.shadow_root = b"\x00" * 8
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

    def test_corrupt_stale_counter_defeats_baseline_reconstruction(self):
        """If the stale NVM copy of a tracked counter block is corrupt
        and there are no clones, reconstruction cannot be verified."""
        ctrl = make_ctrl(seed=41)
        # Dirty one counter block, persist it once so NVM is touched,
        # then dirty it again so a shadow entry tracks it at crash.
        for __ in range(ctrl.osiris_limit):  # forces an Osiris persist
            ctrl.write(0, bytes(64))
        ctrl.write(0, b"\x01" * 64)  # dirty again, tracked by shadow
        image = ctrl.crash()
        addr = ctrl.amap.node_addr(1, 0)
        assert image.nvm.is_touched(addr)
        image.nvm.flip_bits(addr, [7])
        with pytest.raises(RecoveryError):
            RecoveryManager(image).recover()

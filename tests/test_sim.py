"""Tests for the trace-driven timing simulator."""

from dataclasses import asdict

import pytest

from repro.sim import SecureSystem, SimResult, SystemConfig, run_schemes
from repro.workloads import gcc, ubench


class TestSystemConfig:
    def test_table3_values(self):
        config = SystemConfig.table3()
        assert config.cpu_ghz == 2.67
        assert config.memory_bytes == 16 << 30
        assert config.metadata_cache_bytes == 512 * 1024
        names = [lvl.name for lvl in config.cache_levels]
        assert names == ["L1", "L2", "LLC"]
        l1, l2, llc = config.cache_levels
        assert (l1.latency_cycles, l2.latency_cycles, llc.latency_cycles) == (2, 20, 32)

    def test_scaled_preserves_structure(self):
        config = SystemConfig.scaled(32)
        assert config.memory_bytes == 32 << 20
        assert len(config.cache_levels) == 3
        assert config.metadata_cache_bytes < 512 * 1024

    def test_cycle_conversion(self):
        config = SystemConfig.table3()
        assert config.ns_to_cycles(150) == pytest.approx(150 * 2.67)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(memory_bytes=100)
        with pytest.raises(ValueError):
            SystemConfig(cpu_ghz=0)
        with pytest.raises(ValueError):
            SystemConfig.scaled(0)


class TestSecureSystem:
    @pytest.fixture
    def config(self):
        return SystemConfig.scaled(16)

    def test_run_produces_result(self, config):
        system = SecureSystem("baseline", config=config)
        result = system.run(ubench(64, footprint_bytes=1 << 20, num_refs=2000))
        assert isinstance(result, SimResult)
        assert result.memory_requests == 2000
        assert result.instructions >= 2000
        assert result.exec_time_ns > 0
        assert result.nvm_reads > 0

    def test_cache_filtering_reduces_traffic(self, config):
        """A tiny working set mostly hits the caches: far fewer NVM
        reads than requests."""
        system = SecureSystem("baseline", config=config)
        result = system.run(gcc(footprint_bytes=1 << 20, num_refs=4000))
        assert result.nvm_reads < result.memory_requests

    def test_exec_time_is_max_of_paths(self, config):
        system = SecureSystem("baseline", config=config)
        result = system.run(ubench(128, footprint_bytes=2 << 20, num_refs=2000))
        cpu_ns = result.cpu_cycles * config.cycle_ns
        assert result.exec_time_ns == pytest.approx(
            max(cpu_ns, result.channel_busy_ns)
        )

    def test_soteria_overhead_small_but_present(self, config):
        out = run_schemes(
            lambda: ubench(128, footprint_bytes=4 << 20, num_refs=6000),
            config=config,
        )
        base = out["baseline"]
        for scheme in ("src", "sac"):
            slowdown = out[scheme].slowdown_vs(base)
            assert 0 <= slowdown < 0.25
            assert out[scheme].nvm_writes >= base.nvm_writes

    def test_sac_writes_at_least_src(self, config):
        out = run_schemes(
            lambda: ubench(128, footprint_bytes=4 << 20, num_refs=6000),
            config=config,
        )
        assert out["sac"].nvm_writes >= out["src"].nvm_writes

    def test_identical_trace_identical_baseline_behavior(self, config):
        a = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=2000)
        )
        b = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=2000)
        )
        assert a.nvm_reads == b.nvm_reads
        assert a.exec_time_ns == b.exec_time_ns

    def test_result_metrics(self, config):
        result = SecureSystem("baseline", config=config).run(
            ubench(64, footprint_bytes=1 << 20, num_refs=1000)
        )
        assert 0 < result.ipc
        assert result.slowdown_vs(result) == 0.0
        assert result.write_overhead_vs(result) == 0.0
        assert 0 <= result.evictions_per_request

    def test_warmup_excluded_from_measurement(self, config):
        """With warmup, cold-start compulsory misses don't pollute the
        measured window: fewer memory requests, warmer caches."""
        cold = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=4000)
        )
        warmed = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=4000), warmup_refs=2000
        )
        assert warmed.memory_requests == 2000
        # Same stream, warmed caches: measured NVM reads per request drop.
        assert (
            warmed.nvm_reads / warmed.memory_requests
            < cold.nvm_reads / cold.memory_requests
        )

    def test_warmup_longer_than_trace(self, config):
        result = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=100), warmup_refs=1000
        )
        assert result.memory_requests == 0
        assert result.exec_time_ns == 0.0

    def test_warmup_resets_every_stat_domain(self, config):
        """Regression: the warmup checkpoint used to reset only the
        controller stats and NVM counters, so warmup accesses leaked
        into ``metadata_miss_rate`` and the CPU cache hit rates."""
        system = SecureSystem("baseline", config=config)
        system.run(
            gcc(footprint_bytes=1 << 20, num_refs=200), warmup_refs=200
        )
        # The whole trace was warmup: every measured stat domain is zero.
        assert system.controller.metadata_cache.stats.accesses == 0
        assert system.controller.stats.total_nvm_reads == 0
        assert system.controller.nvm.read_count == 0
        for cache in system.hierarchy.caches:
            assert cache.stats.accesses == 0

    def test_warmup_miss_rate_excludes_cold_start(self, config):
        """The measured metadata miss rate must come from the warmed
        window only — it cannot equal the cold full-trace rate, and the
        measured access count must cover just the measured window."""
        cold_system = SecureSystem("baseline", config=config)
        cold_system.run(gcc(footprint_bytes=1 << 20, num_refs=4000))
        cold_accesses = cold_system.controller.metadata_cache.stats.accesses

        warm_system = SecureSystem("baseline", config=config)
        warmed = warm_system.run(
            gcc(footprint_bytes=1 << 20, num_refs=4000), warmup_refs=2000
        )
        warm_stats = warm_system.controller.metadata_cache.stats
        assert 0 < warm_stats.accesses < cold_accesses
        assert warmed.metadata_miss_rate == warm_stats.miss_rate

    def test_run_schemes_seed_is_reproducible(self, config):
        """Regression: ``run_schemes`` used to accept ``seed`` and
        silently ignore it.  Same seed -> bit-equal results; different
        seeds -> different traces (gcc draws addresses from the rng)."""
        factory = lambda: gcc(footprint_bytes=1 << 20, num_refs=1500)  # noqa: E731
        a = run_schemes(factory, config=config, seed=42)
        b = run_schemes(factory, config=config, seed=42)
        c = run_schemes(factory, config=config, seed=43)
        assert {k: asdict(v) for k, v in a.items()} == {
            k: asdict(v) for k, v in b.items()
        }
        assert asdict(a["baseline"]) != asdict(c["baseline"])

    def test_run_schemes_default_seed_preserves_pinned_streams(self, config):
        """seed=0 (the default) must reproduce the historical default
        workload stream (Workload.seed == 1) the figures are pinned to."""
        direct = SecureSystem("baseline", config=config).run(
            gcc(footprint_bytes=1 << 20, num_refs=1500)
        )
        threaded = run_schemes(
            lambda: gcc(footprint_bytes=1 << 20, num_refs=1500),
            schemes=("baseline",), config=config,
        )
        assert asdict(direct) == asdict(threaded["baseline"])

    def test_reference_batches_match_stream(self):
        workload = gcc(footprint_bytes=1 << 20, num_refs=1000)
        flat = [
            ref for batch in workload.reference_batches(batch_size=64)
            for ref in batch
        ]
        assert flat == workload.materialize()
        with pytest.raises(ValueError):
            next(workload.reference_batches(batch_size=0))

    def test_functional_crypto_mode_matches_fast_mode_traffic(self, config):
        fast = SecureSystem("src", config=config, functional_crypto=False).run(
            ubench(128, footprint_bytes=2 << 20, num_refs=1500)
        )
        slow = SecureSystem("src", config=config, functional_crypto=True).run(
            ubench(128, footprint_bytes=2 << 20, num_refs=1500)
        )
        assert fast.nvm_reads == slow.nvm_reads
        assert fast.nvm_writes == slow.nvm_writes

"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_size, build_parser, main


class TestParseSize:
    def test_units(self):
        assert _parse_size("1tb") == 1 << 40
        assert _parse_size("16GB") == 16 << 30
        assert _parse_size("512mb") == 512 << 20
        assert _parse_size("64kb") == 64 << 10
        assert _parse_size("4096") == 4096
        assert _parse_size("1.5gb") == int(1.5 * (1 << 30))

    def test_invalid(self):
        with pytest.raises(ValueError):
            _parse_size("lots")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("info", "perf", "reliability", "crash-test", "figures",
                    "chaos"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_runtime_flags_parse(self):
        parser = build_parser()
        for cmd in ("perf", "reliability", "chaos"):
            args = parser.parse_args([
                cmd, "--checkpoint", "ckpt", "--cell-timeout", "30",
                "--max-failures", "5",
            ])
            assert args.checkpoint == "ckpt"
            assert args.cell_timeout == 30.0
            assert args.max_failures == 5
            args = parser.parse_args([cmd, "--resume", "ckpt"])
            assert args.resume == "ckpt"

    def test_conflicting_checkpoint_dirs_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "--checkpoint", "a", "--resume", "b",
                  "--workloads", "gcc"])

    def test_figures_command_wiring(self, tmp_path, monkeypatch, capsys):
        """The figures command delegates to repro.figures.run_all with
        the chosen directory and quick/full mode."""
        import repro.figures as figures

        calls = {}

        def fake_run_all(outdir, quick):
            calls["outdir"] = str(outdir)
            calls["quick"] = quick
            return {}

        monkeypatch.setattr(figures, "run_all", fake_run_all)
        assert main(["figures", "--out", str(tmp_path)]) == 0
        assert calls == {"outdir": str(tmp_path), "quick": True}
        assert main(["figures", "--out", str(tmp_path), "--full"]) == 0
        assert calls["quick"] is False


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--size", "1gb"]) == 0
        out = capsys.readouterr().out
        assert "tree levels" in out
        assert "metadata storage overhead" in out

    def test_perf_subset(self, capsys):
        code = main([
            "perf", "--memory-mb", "16", "--footprint-mb", "2",
            "--refs", "1500", "--workloads", "gcc",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gcc" in out

    def test_perf_unknown_workload(self, capsys):
        assert main(["perf", "--workloads", "doom"]) == 1

    def test_perf_checkpoint_resume_roundtrip(self, capsys, tmp_path):
        """A checkpointed perf sweep resumed from its journal emits a
        sweep/v1 report whose results are bit-identical to a clean run."""
        import json

        base = ["perf", "--memory-mb", "16", "--footprint-mb", "1",
                "--refs", "800", "--workloads", "gcc"]
        ckpt = tmp_path / "ckpt"
        clean_out = tmp_path / "clean.json"
        resumed_out = tmp_path / "resumed.json"

        assert main(base + ["--out", str(clean_out)]) == 0
        assert main(base + ["--checkpoint", str(ckpt)]) == 0
        assert (ckpt / "journal.jsonl").exists()
        assert main(base + ["--resume", str(ckpt),
                            "--out", str(resumed_out)]) == 0
        capsys.readouterr()

        clean = json.loads(clean_out.read_text())
        resumed = json.loads(resumed_out.read_text())
        assert clean["schema"] == resumed["schema"] == "sweep/v1"
        assert clean["kind"] == "perf"
        assert resumed["results"] == clean["results"]
        assert resumed["interrupted"] is False
        assert resumed["salvage"]["resumed"] == 3    # one per scheme
        assert resumed["runtime"]["runtime.cells_resumed"] == 3

    def test_reliability_out_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "rel.json"
        code = main(["reliability", "--size", "1tb", "--fits", "40",
                     "--trials", "2000", "--out", str(out_path)])
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "sweep/v1"
        assert report["kind"] == "reliability"
        assert report["salvage"]["completed"] == 1

    def test_reliability(self, capsys):
        code = main([
            "reliability", "--size", "1tb", "--fits", "40",
            "--trials", "4000", "--decompose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "loss decomposition" in out

    def test_reliability_seed_is_deterministic(self, capsys):
        argv = ["reliability", "--size", "1tb", "--fits", "40",
                "--trials", "2000", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert main(argv[:-1] + ["10"]) == 0
        assert capsys.readouterr().out != first

    def test_chaos(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "report.json"
        # Enough faults that some land on settled, non-resident counters
        # (the injector now skips WPQ-pending cells, and cache-resident
        # damage is healed by the next dirty writeback).
        code = main([
            "chaos", "--ops", "800", "--faults", "10",
            "--schemes", "baseline", "src",
            "--targets", "counter",
            "--scrub-intervals", "0",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no-silent-corruption invariant: HELD" in out
        report = json.loads(out_path.read_text())
        assert report["invariant_ok"] is True
        assert report["resilience"]["src"]["ge_10x"]

    def test_chaos_checkpoint_resume(self, capsys, tmp_path):
        import json

        base = ["chaos", "--ops", "150", "--faults", "2",
                "--schemes", "baseline", "src", "--targets", "counter",
                "--scrub-intervals", "0"]
        ckpt = tmp_path / "ckpt"
        first_out = tmp_path / "first.json"
        resumed_out = tmp_path / "resumed.json"
        assert main(base + ["--checkpoint", str(ckpt),
                            "--out", str(first_out)]) == 0
        assert main(base + ["--resume", str(ckpt),
                            "--out", str(resumed_out)]) == 0
        capsys.readouterr()
        first = json.loads(first_out.read_text())
        resumed = json.loads(resumed_out.read_text())
        assert resumed["runs"] == first["runs"]
        assert resumed["schemes"] == first["schemes"]
        assert resumed["salvage"]["resumed"] == 2
        assert resumed["interrupted"] is False

    def test_crash_test_toc(self, capsys):
        code = main([
            "crash-test", "--scheme", "src", "--ops", "300",
            "--corrupt-shadow",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery OK" in out
        assert "repaired" in out

    def test_crash_test_baseline_corrupted_fails(self, capsys):
        code = main([
            "crash-test", "--scheme", "baseline", "--ops", "300",
            "--corrupt-shadow",
        ])
        assert code == 1
        assert "RECOVERY FAILED" in capsys.readouterr().out

    def test_crash_test_bmt(self, capsys):
        code = main([
            "crash-test", "--integrity", "bmt", "--ops", "300",
        ])
        assert code == 0
        assert "regenerated" in capsys.readouterr().out


class TestScenarioCli:
    def test_list_scenarios(self, capsys):
        code = main(["chaos", "--list-scenarios"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("powercut-storm", "scrub-race", "dimm-offline",
                     "compound-siege"):
            assert name in out
        assert "models:" in out

    def test_scenario_run_writes_schema_valid_report(self, capsys,
                                                     tmp_path):
        import json

        out_path = tmp_path / "scenario.json"
        code = main([
            "chaos", "--scenario", "scrub-race", "--schemes", "src",
            "--size", "32kb", "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no-silent-corruption invariant: HELD" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "scenario/v1"
        assert report["invariant_ok"] is True
        assert report["runs"][0]["scenario"] == "scrub-race"

    def test_scenario_with_trace(self, capsys):
        code = main([
            "chaos", "--scenario", "bank-storm", "--schemes", "src",
            "--size", "32kb", "--trace", "tests/fixtures/interleaved.trace",
        ])
        assert code == 0
        assert "HELD" in capsys.readouterr().out

    def test_trace_without_scenario_rejected(self):
        with pytest.raises(SystemExit, match="--trace requires"):
            main(["chaos", "--trace", "tests/fixtures/interleaved.trace"])

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            main(["chaos", "--scenario", "meteor-strike"])

    def test_scenario_checkpoint_resume(self, capsys, tmp_path):
        import json

        base = ["chaos", "--scenario", "ramp-siege", "--schemes", "src",
                "--size", "32kb"]
        clean_out = tmp_path / "clean.json"
        assert main(base + ["--out", str(clean_out)]) == 0
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.json"
        assert main(base + ["--checkpoint", str(ckpt),
                            "--out", str(first)]) == 0
        resumed_out = tmp_path / "resumed.json"
        assert main(base + ["--resume", str(ckpt),
                            "--out", str(resumed_out)]) == 0
        clean = json.loads(clean_out.read_text())
        resumed = json.loads(resumed_out.read_text())
        assert resumed["runs"] == clean["runs"]
        assert resumed["scenarios"] == clean["scenarios"]


class TestMcCli:
    def test_parse_count_scientific(self):
        from repro.cli import _parse_count

        assert _parse_count("1e8") == 100_000_000
        assert _parse_count("20000") == 20_000
        assert _parse_count("2.5e3") == 2_500

    def test_mc_diff_quick(self, capsys):
        assert main(["mc-diff", "--quick", "--trials", "150"]) == 0
        out = capsys.readouterr().out
        assert "BIT-IDENTICAL" in out

    def test_mc_diff_out_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "mc_diff.json"
        assert main(["mc-diff", "--quick", "--trials", "100",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "mc_diff/v1"
        assert report["identical"] is True

    def test_reliability_empirical(self, capsys, tmp_path):
        import json

        out = tmp_path / "mc.json"
        code = main([
            "reliability", "--empirical", "--fits", "80",
            "--trials", "3e3", "--batch-trials", "500",
            "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "udr_mc/v1"
        campaign = report["campaigns"][0]
        assert campaign["p_block_due_half_width"] > 0
        assert set(campaign["schemes"])  # per-scheme error bars present
        printed = capsys.readouterr().out
        assert "empirical UDR" in printed

    def test_reliability_empirical_checkpoint_resume(self, capsys,
                                                     tmp_path):
        import json

        ckpt = tmp_path / "ck"
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = ["reliability", "--empirical", "--fits", "80",
                "--trials", "2e3", "--batch-trials", "500"]
        assert main(base + ["--checkpoint", str(ckpt),
                            "--out", str(out_a)]) == 0
        assert main(base + ["--resume", str(ckpt),
                            "--out", str(out_b)]) == 0
        a = json.loads(out_a.read_text())
        b = json.loads(out_b.read_text())
        assert a["campaigns"] == b["campaigns"]

    def test_compare_schemes_empirical_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "compare-schemes", "--empirical-trials", "1e4",
            "--empirical-fit", "40", "--no-empirical",
        ])
        assert args.empirical_trials == 10_000
        assert args.empirical_fit == 40.0
        assert args.no_empirical is True

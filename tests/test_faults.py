"""Tests for the fault model, ECC models, and Monte Carlo simulator."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_CLASSES,
    ChipkillCorrect,
    Extent,
    Fault,
    FaultSimConfig,
    FaultSimulator,
    NoEcc,
    SecDed,
    make_ecc,
    mtbf_hours,
    sample_fault,
    union_block_count,
)
from repro.memory import DimmGeometry

GEO = DimmGeometry()


def extent(bank=None, row=None, group=None):
    return Extent(
        banks=None if bank is None else frozenset([bank]),
        rows=None if row is None else frozenset([row]),
        groups=None if group is None else frozenset([group]),
    )


class TestExtent:
    def test_intersect_disjoint_is_empty(self):
        a = extent(bank=0)
        b = extent(bank=1)
        assert a.intersect(b).is_empty()

    def test_intersect_with_all(self):
        a = extent(bank=2, row=5)
        b = Extent()  # everything
        meet = a.intersect(b)
        assert meet.banks == frozenset([2])
        assert meet.rows == frozenset([5])
        assert meet.groups is None

    def test_block_count(self):
        assert extent(bank=0, row=0, group=0).block_count(GEO) == 1
        assert extent(bank=0, row=0).block_count(GEO) == GEO.blocks_per_row
        assert extent(bank=0).block_count(GEO) == GEO.rows * GEO.blocks_per_row
        assert Extent().block_count(GEO) == GEO.blocks_per_rank

    def test_blocks_enumeration(self):
        blocks = list(extent(bank=1, row=2, group=3).blocks(GEO, rank=0))
        assert len(blocks) == 1
        per_bank = GEO.rows * GEO.blocks_per_row
        assert blocks[0] == 1 * per_bank + 2 * GEO.blocks_per_row + 3

    def test_blocks_respect_rank_offset(self):
        b0 = next(extent(bank=0, row=0, group=0).blocks(GEO, rank=0))
        b1 = next(extent(bank=0, row=0, group=0).blocks(GEO, rank=1))
        assert b1 - b0 == GEO.blocks_per_rank

    def test_blocks_limit(self):
        blocks = list(extent(bank=0).blocks(GEO, rank=0, limit=10))
        assert len(blocks) == 10


class TestSampleFault:
    @pytest.mark.parametrize("fault_class", FAULT_CLASSES)
    def test_all_classes_sample(self, fault_class):
        rng = np.random.default_rng(1)
        faults = sample_fault(fault_class, GEO, rng)
        assert faults
        for fault in faults:
            assert fault.fault_class == fault_class
            assert fault.chip in GEO.chip_ids_of_rank(fault.rank)

    def test_bit_fault_is_single_block(self):
        rng = np.random.default_rng(2)
        (fault,) = sample_fault("bit", GEO, rng)
        assert fault.extent.block_count(GEO) == 1
        assert not fault.multibit

    def test_bank_fault_covers_whole_bank(self):
        rng = np.random.default_rng(3)
        (fault,) = sample_fault("bank", GEO, rng)
        assert fault.extent.block_count(GEO) == GEO.rows * GEO.blocks_per_row

    def test_nrank_is_whole_chip(self):
        rng = np.random.default_rng(4)
        (fault,) = sample_fault("nrank", GEO, rng)
        assert fault.extent.block_count(GEO) == GEO.blocks_per_rank

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            sample_fault("meteor", GEO, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Fault("meteor", 0, 0, Extent())


class TestChipkill:
    def test_single_chip_fault_fully_corrected(self):
        ecc = ChipkillCorrect()
        faults = [Fault("bank", chip=0, rank=0, extent=extent(bank=0), multibit=True)]
        assert ecc.uncorrectable_regions(faults, GEO) == []

    def test_two_chips_overlapping_is_due(self):
        ecc = ChipkillCorrect()
        faults = [
            Fault("bank", 0, 0, extent(bank=3), True),
            Fault("row", 1, 0, extent(bank=3, row=7), True),
        ]
        regions = ecc.uncorrectable_regions(faults, GEO)
        assert len(regions) == 1
        assert regions[0].block_count(GEO) == GEO.blocks_per_row

    def test_two_chips_disjoint_banks_corrected(self):
        ecc = ChipkillCorrect()
        faults = [
            Fault("bank", 0, 0, extent(bank=3), True),
            Fault("bank", 1, 0, extent(bank=4), True),
        ]
        assert ecc.uncorrectable_regions(faults, GEO) == []

    def test_different_ranks_never_interact(self):
        ecc = ChipkillCorrect()
        faults = [
            Fault("bank", 0, 0, extent(bank=3), True),
            Fault("bank", 9, 1, extent(bank=3), True),
        ]
        assert ecc.uncorrectable_regions(faults, GEO) == []

    def test_same_chip_twice_corrected(self):
        ecc = ChipkillCorrect()
        faults = [
            Fault("bank", 0, 0, extent(bank=3), True),
            Fault("row", 0, 0, extent(bank=3, row=1), True),
        ]
        assert ecc.uncorrectable_regions(faults, GEO) == []


class TestSecDed:
    def test_multibit_fault_is_due_alone(self):
        ecc = SecDed()
        faults = [Fault("row", 0, 0, extent(bank=0, row=0), True)]
        regions = ecc.uncorrectable_regions(faults, GEO)
        assert len(regions) == 1

    def test_single_bit_fault_corrected(self):
        ecc = SecDed()
        faults = [Fault("bit", 0, 0, extent(bank=0, row=0, group=0), False)]
        assert ecc.uncorrectable_regions(faults, GEO) == []

    def test_two_bit_faults_same_cell_due(self):
        ecc = SecDed()
        cell = extent(bank=0, row=0, group=0)
        faults = [
            Fault("bit", 0, 0, cell, False),
            Fault("bit", 1, 0, cell, False),
        ]
        assert len(ecc.uncorrectable_regions(faults, GEO)) == 1

    def test_chipkill_strictly_stronger(self):
        """Every SECDED-correctable pattern is Chipkill-correctable."""
        rng = np.random.default_rng(11)
        chipkill, secded = ChipkillCorrect(), SecDed()
        for _ in range(50):
            faults = []
            for _ in range(int(rng.integers(1, 4))):
                cls = FAULT_CLASSES[int(rng.integers(0, len(FAULT_CLASSES)))]
                faults.extend(sample_fault(cls, GEO, rng))
            ck = sum(r.block_count(GEO) for r in chipkill.uncorrectable_regions(faults, GEO))
            sd = sum(r.block_count(GEO) for r in secded.uncorrectable_regions(faults, GEO))
            assert ck <= sd


class TestUnionCount:
    def test_disjoint_regions_sum(self):
        from repro.faults import DueRegion

        regions = [
            DueRegion(0, extent(bank=0, row=0, group=0)),
            DueRegion(0, extent(bank=1, row=0, group=0)),
        ]
        assert union_block_count(regions, GEO) == 2

    def test_overlapping_regions_deduplicated(self):
        from repro.faults import DueRegion

        regions = [
            DueRegion(0, extent(bank=0, row=0)),
            DueRegion(0, extent(bank=0, row=0)),  # identical
        ]
        assert union_block_count(regions, GEO) == GEO.blocks_per_row

    def test_partial_overlap(self):
        from repro.faults import DueRegion

        regions = [
            DueRegion(0, extent(bank=0, row=0)),         # one row: 64 blocks
            DueRegion(0, extent(bank=0, group=0)),       # one group col: 16384
        ]
        expected = GEO.blocks_per_row + GEO.rows - 1
        assert union_block_count(regions, GEO) == expected

    def test_regions_in_different_ranks_independent(self):
        from repro.faults import DueRegion

        regions = [
            DueRegion(0, extent(bank=0, row=0)),
            DueRegion(1, extent(bank=0, row=0)),
        ]
        assert union_block_count(regions, GEO) == 2 * GEO.blocks_per_row

    def test_additive_fallback_warns_and_reports(self):
        import warnings

        from repro.faults import DueRegion

        # 15 single-row regions in one rank: above the inclusion-
        # exclusion cutoff, so the additive upper bound substitutes.
        regions = [
            DueRegion(0, extent(bank=0, row=r)) for r in range(15)
        ]
        seen = []
        with pytest.warns(RuntimeWarning, match="additive upper bound"):
            total = union_block_count(
                regions, GEO, on_approximation=seen.append
            )
        assert total == 15 * GEO.blocks_per_row
        assert seen == [15]
        # At or below the cutoff: exact, silent, no callback.
        seen.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            exact = union_block_count(
                regions[:14], GEO, on_approximation=seen.append
            )
        assert exact == 14 * GEO.blocks_per_row
        assert seen == []

    def test_result_counts_approximations(self):
        # Normal campaigns never hit the fallback: the field exists and
        # stays zero, so a nonzero value is a reliable red flag.
        config = FaultSimConfig(fit_per_device=20, trials=800, seed=5)
        result = FaultSimulator(config).run(trials_per_k=100)
        assert result.union_approximations == 0


class TestFaultSimConfig:
    def test_table4_defaults(self):
        config = FaultSimConfig()
        assert config.geometry.chips == 18
        assert config.repair == "chipkill"
        assert config.years == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSimConfig(fit_per_device=0)
        with pytest.raises(ValueError):
            FaultSimConfig(repair="raid")
        with pytest.raises(ValueError):
            FaultSimConfig(relative_rates={"bit": 0.5})

    def test_expected_faults_scale_with_fit(self):
        low = FaultSimConfig(fit_per_device=1).expected_faults_per_dimm()
        high = FaultSimConfig(fit_per_device=80).expected_faults_per_dimm()
        assert abs(high / low - 80) < 1e-9

    def test_mtbf_matches_paper_calibration(self):
        # Section 4: 694 hours at FIT 1, 8.6 hours at FIT 80.
        assert mtbf_hours(1) == pytest.approx(694.4, abs=0.1)
        assert mtbf_hours(80) == pytest.approx(8.68, abs=0.01)
        with pytest.raises(ValueError):
            mtbf_hours(0)

    def test_make_ecc(self):
        assert isinstance(make_ecc("chipkill"), ChipkillCorrect)
        assert isinstance(make_ecc("secded"), SecDed)
        assert isinstance(make_ecc("none"), NoEcc)
        with pytest.raises(ValueError):
            make_ecc("magic")


class TestFaultSimulator:
    def test_moments_are_decreasing_in_depth(self):
        sim = FaultSimulator(FaultSimConfig(fit_per_device=80, trials=4000))
        result = sim.run(trials_per_k=500)
        moments = result.p_multi_due
        for d in range(1, 5):
            assert moments[d] >= moments[d + 1] >= 0
        cross = result.p_multi_due_cross
        assert cross[2] <= cross[1]

    def test_p_block_due_increases_with_fit(self):
        results = []
        for fit in (10, 80):
            sim = FaultSimulator(FaultSimConfig(fit_per_device=fit, trials=4000))
            results.append(sim.run(trials_per_k=800).p_block_due)
        assert results[1] > results[0] > 0

    def test_chipkill_beats_secded(self):
        ck = FaultSimulator(
            FaultSimConfig(fit_per_device=40, trials=4000, repair="chipkill")
        ).run(trials_per_k=500)
        sd = FaultSimulator(
            FaultSimConfig(fit_per_device=40, trials=4000, repair="secded")
        ).run(trials_per_k=500)
        assert ck.p_block_due < sd.p_block_due

    def test_deterministic_for_same_seed(self):
        config = FaultSimConfig(fit_per_device=20, trials=2000, seed=5)
        a = FaultSimulator(config).run(trials_per_k=300)
        b = FaultSimulator(config).run(trials_per_k=300)
        assert a.p_block_due == b.p_block_due
        assert a.p_multi_due == b.p_multi_due

    def test_cross_rank_moment_not_above_same_domain(self):
        sim = FaultSimulator(FaultSimConfig(fit_per_device=80, trials=4000))
        result = sim.run(trials_per_k=500)
        # Spreading copies across ranks can only reduce joint loss.
        assert result.p_multi_due_cross[2] <= result.p_multi_due[2] * 1.5

"""Differential oracle + invariant checker: the simulator never lies."""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core import make_controller
from repro.sim import SimCell, SweepEngine, SystemConfig
from repro.sim.system import SecureSystem
from repro.verify import (
    Oracle,
    VerificationError,
    VerifySession,
    resolve_counter_block,
)
from repro.workloads import make_workload

KB = 1024


def drive(ctrl, session, ops=300, seed=11, write_fraction=0.6):
    """Seeded mixed read/write stream; returns the plaintext mirror."""
    rng = np.random.default_rng(seed)
    mirror = {}
    for _ in range(ops):
        block = int(rng.integers(0, ctrl.num_data_blocks))
        if block not in mirror or rng.random() < write_fraction:
            data = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
            ctrl.write(block, data)
            mirror[block] = data
        else:
            assert ctrl.read(block).data == mirror[block]
    return mirror


def build(scheme="src", mode="toc", data_kb=32, cache_kb=2, seed=7):
    return make_controller(
        scheme,
        data_kb * KB,
        metadata_cache_bytes=cache_kb * KB,
        functional_crypto=True,
        quarantine=True,
        integrity_mode=mode,
        rng=np.random.default_rng(seed),
    )


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", ["baseline", "src", "sac"])
    @pytest.mark.parametrize("mode", ["toc", "bmt"])
    def test_clean_run_verifies(self, scheme, mode):
        ctrl = build(scheme, mode)
        session = VerifySession(ctrl).attach()
        drive(ctrl, session)
        report = session.finish()
        assert report["ok"]
        assert report["schema"] == "verify/v1"
        assert report["oracle"]["divergences"] == 0
        assert report["oracle"]["writes"] > 0
        assert report["oracle"]["reads"] > 0
        assert report["invariants"]["violations"] == 0

    def test_clean_run_with_flush_and_rekey(self):
        ctrl = build()
        session = VerifySession(ctrl).attach()
        drive(ctrl, session, ops=200)
        ctrl.flush()
        ctrl.rekey(rng=np.random.default_rng(3))
        drive(ctrl, session, ops=100, seed=12)
        assert session.finish()["ok"]

    def test_oracle_mirrors_counter_state(self):
        ctrl = build()
        oracle = Oracle(ctrl).attach()
        for i in range(130):  # crosses a minor-counter overflow
            ctrl.write(0, bytes([i % 251]) * 64)
        assert oracle.ok
        mirror = oracle.counters[0]
        live = resolve_counter_block(ctrl, 0)
        assert mirror.effective_counter(0) == live.effective_counter(0)
        oracle.detach()

    def test_overflow_reencryption_checked(self):
        ctrl = build()
        oracle = Oracle(ctrl).attach()
        ctrl.write(1, b"\x42" * 64)   # sibling in the same counter page
        for i in range(130):
            ctrl.write(0, bytes([i % 251]) * 64)
        assert oracle.check_tree() == 0
        assert oracle.ok
        assert ctrl.read(1).data == b"\x42" * 64
        oracle.detach()


class TestLieDetection:
    def test_counter_tampering_detected(self):
        ctrl = build()
        session = VerifySession(ctrl).attach()
        drive(ctrl, session, ops=150)
        ctrl.flush()
        address = ctrl.amap.node_addr(1, 0)
        raw = bytearray(ctrl.nvm.peek_block(address))
        raw[0] ^= 0xFF
        ctrl.nvm._blocks[address] = bytes(raw)
        with pytest.raises(VerificationError) as excinfo:
            session.finish()
        assert excinfo.value.report is not None
        kinds = {r["kind"] for r in excinfo.value.report["oracle"]["records"]}
        assert kinds  # at least one typed divergence recorded

    def test_clone_divergence_detected(self):
        ctrl = build()
        session = VerifySession(ctrl).attach()
        drive(ctrl, session, ops=150)
        ctrl.flush()
        clone = ctrl.amap.clone_addr(1, 0, 1)
        assert ctrl.nvm.is_touched(clone)
        raw = bytearray(ctrl.nvm.peek_block(clone))
        raw[5] ^= 0x01
        ctrl.nvm._blocks[clone] = bytes(raw)
        with pytest.raises(VerificationError) as excinfo:
            session.finish()
        kinds = {r["kind"] for r in excinfo.value.report["oracle"]["records"]}
        assert "clone_divergence" in kinds

    def test_silent_plaintext_lie_detected(self):
        """A read event carrying wrong bytes must be flagged."""
        ctrl = build()
        oracle = Oracle(ctrl).attach()
        ctrl.write(3, b"\x01" * 64)
        ctrl.tracer.emit("data_read", block=3,
                         address=ctrl.amap.data_addr(3),
                         data=b"\x02" * 64, counter=1)
        assert not oracle.ok
        assert oracle.records[0]["kind"] == "silent_corruption"
        oracle.detach()

    def test_failed_write_marks_block_indeterminate(self):
        """After data_write_failed the block's persisted content is
        unknown (old or new bytes), so reads of it are exempt — but the
        counter mirror still takes the increment the cache performed."""
        ctrl = build()
        oracle = Oracle(ctrl).attach()
        ctrl.write(4, b"\x07" * 64)
        before = oracle.counters[0].effective_counter(4)
        ctrl.tracer.emit("data_write_failed", block=4, counter_index=0,
                         slot=4)
        assert oracle.plaintexts[4] is None
        assert oracle.counters[0].effective_counter(4) == before + 1
        ctrl.tracer.emit("data_read", block=4,
                         address=ctrl.amap.data_addr(4),
                         data=b"\x99" * 64, counter=2)
        assert oracle.ok  # indeterminate, not a lie
        assert 0 in oracle._unsettled
        oracle.detach()


class TestInvariants:
    def test_root_regression_detected(self):
        ctrl = build()
        session = VerifySession(ctrl, oracle=False).attach()
        drive(ctrl, session, ops=100)
        ctrl.flush()  # push writebacks so root slots are nonzero
        session.invariants._check_root()  # snapshot the flushed root
        snapshot = list(ctrl.root.counters)
        slot = max(range(len(snapshot)), key=snapshot.__getitem__)
        assert snapshot[slot] > 0
        ctrl.root.counters[slot] = snapshot[slot] - 1
        # Check directly: a subsequent write would legitimately bump the
        # tampered slot right back, masking the regression.
        session.invariants._check_root()
        assert not session.invariants.ok
        kinds = {r["kind"] for r in session.invariants.records}
        assert "root_counter_regressed" in kinds
        session.detach()

    def test_clone_freshness_final_sweep(self):
        ctrl = build()
        checker = VerifySession(ctrl, oracle=False).attach()
        drive(ctrl, checker, ops=150)
        ctrl.flush()
        clone = ctrl.amap.clone_addr(1, 0, 1)
        raw = bytearray(ctrl.nvm.peek_block(clone))
        raw[0] ^= 0x10
        ctrl.nvm._blocks[clone] = bytes(raw)
        with pytest.raises(VerificationError) as excinfo:
            checker.finish()
        kinds = {
            r["kind"] for r in excinfo.value.report["invariants"]["records"]
        }
        assert "stale_clone" in kinds


class TestSystemIntegration:
    SPEC = ("ubench", (512,), {"footprint_bytes": 4 << 20, "num_refs": 12000})

    def _system(self):
        return SecureSystem(
            scheme="src",
            config=SystemConfig.scaled(memory_mb=8),
            functional_crypto=True,
            rng=np.random.default_rng(3),
        )

    def test_run_verify_produces_report(self):
        system = self._system()
        result = system.run(make_workload(self.SPEC, seed=4), verify=True)
        assert result.verify is not None
        assert result.verify["ok"]
        assert result.verify["oracle"]["writes"] > 0

    def test_verification_does_not_perturb_telemetry(self):
        outputs = {}
        for verify in (False, True):
            system = self._system()
            result = system.run(make_workload(self.SPEC, seed=4),
                                verify=verify)
            payload = asdict(result)
            payload.pop("verify")
            outputs[verify] = payload
        assert outputs[False] == outputs[True]


class TestDifferentialSweep:
    def test_jobs1_vs_jobsN_verified_bit_identical(self):
        """Satellite: verified sweeps keep the determinism contract —
        identical results (verdicts included) at any worker count."""
        config = SystemConfig.scaled(memory_mb=8)
        spec = ("ubench", (256,), {"footprint_bytes": 2 << 20,
                                   "num_refs": 8000})
        cells = [
            SimCell(workload=spec, scheme=scheme, config=config, seed=5,
                    verify=True)
            for scheme in ("src", "sac")
        ]
        serial = SweepEngine(cells, jobs=1).run()
        parallel = SweepEngine(cells, jobs=2).run()
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result.verify["ok"]
            assert asdict(s.result) == asdict(p.result)

"""Tests for the content-addressed shared result store (``store/v1``).

The store's contract has three legs: round-trip fidelity (what you put
is bit-what you get), *detection* (a corrupt entry is quarantined and
reported as a miss — never served), and *degradation* (filesystem
trouble turns into counters and local compute, never a dead sweep).
"""

import base64
import json
import os

import pytest

from repro.runtime import ResultStore, cell_key
from repro.runtime.store import STORE_SCHEMA, StoreCorruptionError
from repro.sim import CellOutcome
from repro.telemetry import MetricRegistry

from tests.fleet_helpers import square


def _outcome(value=3, label="cell"):
    return CellOutcome(
        index=0, label=label, ok=True,
        result={"value": value, "square": value * value},
        attempts=1, wall_seconds=0.25,
    )


def _key(value=3):
    return cell_key(("sq", value), square)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store", registry=MetricRegistry())


def _snapshot(store):
    return store.registry.snapshot()


class TestRoundTrip:
    def test_put_then_get_restores_the_exact_result(self, store):
        key = _key()
        assert store.put(key, _outcome()) is True
        record = store.get(key)
        assert record["result"] == {"value": 3, "square": 9}
        assert record["label"] == "cell"
        assert record["attempts"] == 1
        assert record["wall_seconds"] == 0.25
        assert record["schema"] == STORE_SCHEMA
        snap = _snapshot(store)
        assert snap["runtime.store.writes"] == 1
        assert snap["runtime.store.hits"] == 1
        assert snap["runtime.store.misses"] == 0
        assert snap["runtime.store.corrupt"] == 0

    def test_contains_and_count(self, store):
        keys = [_key(v) for v in range(3)]
        for value, key in enumerate(keys):
            assert key not in store
            store.put(key, _outcome(value))
        assert all(key in store for key in keys)
        assert store.count() == 3

    def test_missing_entry_is_a_miss(self, store):
        assert store.get(_key()) is None
        snap = _snapshot(store)
        assert snap["runtime.store.misses"] == 1
        assert snap["runtime.store.corrupt"] == 0

    def test_restore_result_round_trips_payload(self, store):
        key = _key(7)
        store.put(key, _outcome(7))
        record = store.get(key)
        assert ResultStore.restore_result(record) == record["result"]

    def test_republish_is_idempotent(self, store):
        """The at-least-once contract: a second writer publishes a
        bit-identical entry over the first."""
        key = _key()
        store.put(key, _outcome())
        with open(store.entry_path(key), "rb") as fh:
            first = fh.read()
        store.put(key, _outcome())
        with open(store.entry_path(key), "rb") as fh:
            second = fh.read()
        assert first == second
        assert store.count() == 1


class TestCorruptionDetection:
    """A corrupt entry is detected, quarantined, and recomputed —
    the no-silent-corruption guarantee."""

    def _corrupt_payload(self, store, key):
        """Flip one payload character in an otherwise well-formed entry."""
        path = store.entry_path(key)
        with open(path) as fh:
            record = json.load(fh)
        blob = record["payload_b64"]
        middle = len(blob) // 2
        flipped = "A" if blob[middle] != "A" else "B"
        record["payload_b64"] = blob[:middle] + flipped + blob[middle + 1:]
        with open(path, "w") as fh:
            json.dump(record, fh)

    def test_bit_flip_quarantined_never_served(self, store, tmp_path):
        key = _key()
        store.put(key, _outcome())
        self._corrupt_payload(store, key)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(key) is None
        snap = _snapshot(store)
        assert snap["runtime.store.corrupt"] == 1
        assert snap["runtime.store.hits"] == 0
        assert snap["runtime.store.misses"] == 1
        # Moved aside, not deleted: the evidence survives for forensics,
        # and the entry slot is free for the recompute.
        quarantine = tmp_path / "store" / "quarantine"
        assert len(list(quarantine.iterdir())) == 1
        assert not os.path.exists(store.entry_path(key))
        # Recompute-and-republish restores service for the key.
        store.put(key, _outcome())
        assert store.get(key)["result"] == {"value": 3, "square": 9}

    def test_torn_entry_detected(self, store):
        key = _key()
        store.put(key, _outcome())
        with open(store.entry_path(key), "wb") as fh:
            fh.write(b'{"schema": "store/v1", "key": "tor')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(key) is None
        assert _snapshot(store)["runtime.store.corrupt"] == 1

    def test_wrong_schema_rejected(self, store):
        key = _key()
        store.put(key, _outcome())
        path = store.entry_path(key)
        with open(path) as fh:
            record = json.load(fh)
        record["schema"] = "store/v999"
        with open(path, "w") as fh:
            json.dump(record, fh)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(key) is None

    def test_misfiled_entry_rejected(self, store):
        """An entry whose embedded key disagrees with its filename is
        corrupt (a misdirected rename must not satisfy the wrong cell)."""
        key, other = _key(1), _key(2)
        store.put(key, _outcome(1))
        other_path = store.entry_path(other)
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        os.rename(store.entry_path(key), other_path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(other) is None

    def test_verify_rejects_non_object_json(self):
        with pytest.raises(StoreCorruptionError, match="not a JSON object"):
            ResultStore._verify("00", b"[1, 2, 3]")

    def test_verify_rejects_invalid_base64(self):
        record = {"schema": STORE_SCHEMA, "key": "00",
                  "payload_b64": "!!not-base64!!", "payload_sha256": "0"}
        with pytest.raises(StoreCorruptionError, match="payload encoding"):
            ResultStore._verify("00", json.dumps(record).encode())

    def test_verify_rejects_unpicklable_payload(self):
        """Hash-valid but semantically unusable payloads are corrupt
        too — verification covers the full decode chain."""
        import hashlib

        payload = b"this is not a pickle"
        record = {
            "schema": STORE_SCHEMA, "key": "00",
            "payload_b64": base64.b64encode(payload).decode("ascii"),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        with pytest.raises(StoreCorruptionError, match="unpickle"):
            ResultStore._verify("00", json.dumps(record).encode())


class TestDegradedModes:
    def test_unreachable_directory_disables_not_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        with pytest.warns(RuntimeWarning, match="degraded"):
            store = ResultStore(blocker / "store", registry=MetricRegistry())
        assert store.disabled is True
        # Disabled store: every get is a miss, every put a no-op.
        assert store.get(_key()) is None
        assert store.put(_key(), _outcome()) is False
        assert _key() not in store
        assert store.count() == 0
        snap = _snapshot(store)
        assert snap["runtime.store.degraded"] == 1
        assert snap["runtime.store.errors"] >= 1
        assert snap["runtime.store.misses"] == 1

    def test_write_failure_degrades_and_keeps_serving(self, store, tmp_path):
        """A blocked shard turns one put into a dropped publish — the
        rest of the store keeps working."""
        key = _key()
        shard_dir = os.path.dirname(store.entry_path(key))
        os.makedirs(os.path.dirname(shard_dir), exist_ok=True)
        with open(shard_dir, "w") as fh:
            fh.write("file squatting on the shard directory")
        with pytest.warns(RuntimeWarning, match="degraded"):
            assert store.put(key, _outcome()) is False
        snap = _snapshot(store)
        assert snap["runtime.store.degraded"] == 1
        assert snap["runtime.store.writes"] == 0
        # Other shards are unaffected (different key prefix).
        other = next(k for k in (_key(v) for v in range(50))
                     if k[:2] != key[:2])
        assert store.put(other, _outcome()) is True
        assert store.get(other) is not None

    def test_degrade_warns_once(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning) as caught:
            store = ResultStore(blocker / "store", registry=MetricRegistry())
            store.put(_key(1), _outcome(1))
            store.get(_key(2))
        degraded = [w for w in caught if "degraded" in str(w.message)]
        assert len(degraded) == 1

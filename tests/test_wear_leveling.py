"""Tests for Start-Gap wear leveling and NVM endurance accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import NvmDevice, StartGapRemapper, WearLevelingNvm

KB = 1024


class TestEnduranceAccounting:
    def test_per_block_write_counts(self):
        nvm = NvmDevice(capacity_bytes=64 * KB)
        for _ in range(5):
            nvm.write_block(0, bytes(64))
        nvm.write_block(64, bytes(64))
        assert nvm.write_count_of(0) == 5
        assert nvm.write_count_of(64) == 1
        assert nvm.write_count_of(128) == 0

    def test_wear_stats(self):
        nvm = NvmDevice(capacity_bytes=64 * KB)
        assert nvm.wear_stats()["written_blocks"] == 0
        for _ in range(10):
            nvm.write_block(0, bytes(64))
        nvm.write_block(64, bytes(64))
        stats = nvm.wear_stats()
        assert stats["max"] == 10
        assert stats["written_blocks"] == 2
        assert 0 < stats["uniformity"] < 1


class TestStartGapRemapper:
    def test_initial_identity_mapping(self):
        remap = StartGapRemapper(num_lines=8)
        assert [remap.physical_of(i) for i in range(8)] == list(range(8))

    def test_mapping_is_always_a_bijection(self):
        remap = StartGapRemapper(num_lines=8, psi=1)
        for _ in range(100):
            physicals = [remap.physical_of(i) for i in range(8)]
            assert len(set(physicals)) == 8
            assert remap.gap not in physicals
            remap.note_write()

    def test_gap_walks_and_start_advances(self):
        remap = StartGapRemapper(num_lines=4, psi=1)
        assert remap.gap == 4
        # 5 moves = one full rotation over 5 slots.
        for _ in range(5):
            remap.note_write()
        assert remap.start == 1
        assert remap.gap_moves == 5

    def test_every_line_eventually_moves(self):
        remap = StartGapRemapper(num_lines=8, psi=1)
        initial = [remap.physical_of(i) for i in range(8)]
        for _ in range(9 * 9):
            remap.note_write()
        final = [remap.physical_of(i) for i in range(8)]
        assert all(a != b for a, b in zip(initial, final))

    def test_psi_period(self):
        remap = StartGapRemapper(num_lines=8, psi=10)
        for _ in range(9):
            assert remap.note_write() is None
        assert remap.note_write() is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapRemapper(num_lines=0)
        with pytest.raises(ValueError):
            StartGapRemapper(num_lines=4, psi=0)
        with pytest.raises(IndexError):
            StartGapRemapper(num_lines=4).physical_of(4)

    @settings(max_examples=30, deadline=None)
    @given(
        lines=st.integers(min_value=1, max_value=32),
        moves=st.integers(min_value=0, max_value=200),
    )
    def test_property_bijection_after_any_moves(self, lines, moves):
        remap = StartGapRemapper(num_lines=lines, psi=1)
        for _ in range(moves):
            remap.note_write()
        physicals = {remap.physical_of(i) for i in range(lines)}
        assert len(physicals) == lines
        assert remap.gap not in physicals


class TestWearLevelingNvm:
    def _make(self, psi=10):
        backing = NvmDevice(capacity_bytes=64 * KB)
        return WearLevelingNvm(backing, psi=psi)

    def test_logical_capacity_one_block_smaller(self):
        wl = self._make()
        assert wl.capacity_bytes == 64 * KB - 64

    def test_data_preserved_across_relocations(self):
        wl = self._make(psi=3)
        written = {}
        rng = np.random.default_rng(1)
        for i in range(300):
            addr = int(rng.integers(0, wl.num_blocks)) * 64
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            wl.write_block(addr, data)
            written[addr] = data
        assert wl.remap.gap_moves == 100
        for addr, data in written.items():
            assert wl.read_block(addr) == data

    def test_hot_line_wear_is_spread(self):
        """The whole point: hammering one logical line must not hammer
        one physical line.  A line moves once per gap rotation
        (psi x slots writes), so run many rotations: 2kB = 32 slots,
        psi=2 -> one rotation per 64 writes, ~47 rotations here."""
        backing = NvmDevice(capacity_bytes=2 * KB)
        hot = WearLevelingNvm(backing, psi=2)
        for _ in range(3000):
            hot.write_block(0, bytes(64))
        leveled = hot.wear_stats()

        raw = NvmDevice(capacity_bytes=2 * KB)
        for _ in range(3000):
            raw.write_block(0, bytes(64))
        unleveled = raw.wear_stats()

        assert unleveled["max"] == 3000
        assert leveled["max"] < unleveled["max"] / 4
        assert leveled["written_blocks"] == 32  # every slot carried load
        assert leveled["uniformity"] > 0.3

    def test_poison_tracks_the_physical_line(self):
        wl = self._make(psi=10**9)  # no movement
        wl.write_block(0, bytes(64))
        wl.poison_block(0)
        assert wl.is_poisoned(0)
        wl.clear_poison(0)
        assert not wl.is_poisoned(0)

    def test_flip_bits_remapped(self):
        wl = self._make(psi=10**9)
        wl.write_block(64, bytes(64))
        wl.flip_bits(64, [0])
        assert wl.read_block(64)[0] == 1

    def test_touched_addresses_logical(self):
        wl = self._make(psi=2)
        wl.write_block(128, b"\x01" * 64)
        wl.write_block(256, b"\x02" * 64)
        wl.write_block(128, b"\x03" * 64)  # triggers a relocation
        touched = wl.touched_addresses()
        assert 128 in touched and 256 in touched

    def test_bounds(self):
        wl = self._make()
        with pytest.raises(ValueError):
            wl.read_block(wl.capacity_bytes)
        with pytest.raises(ValueError):
            wl.read_block(3)
        with pytest.raises(ValueError):
            WearLevelingNvm(NvmDevice(capacity_bytes=64))

    def test_secure_controller_runs_on_wear_leveled_nvm(self):
        """End-to-end: the full secure controller over Start-Gap."""
        from repro.controller import SecureMemoryController

        backing = NvmDevice(capacity_bytes=2 * 1024 * KB)
        wl = WearLevelingNvm(backing, psi=50)
        # Controller capacity check uses wl.capacity_bytes.
        ctrl = SecureMemoryController(
            256 * KB,
            nvm=wl,
            metadata_cache_bytes=4 * KB,
            rng=np.random.default_rng(5),
        )
        rng = np.random.default_rng(6)
        expect = {}
        for _ in range(800):
            block = int(rng.integers(0, ctrl.num_data_blocks))
            data = bytes(int(x) for x in rng.integers(0, 256, 64))
            ctrl.write(block, data)
            expect[block] = data
        assert wl.remap.gap_moves > 0
        for block, data in expect.items():
            assert ctrl.read(block).data == data

    @settings(max_examples=15, deadline=None)
    @given(
        psi=st.integers(min_value=1, max_value=20),
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=30),
                      st.integers(min_value=0, max_value=255)),
            max_size=120,
        ),
    )
    def test_property_last_write_wins_through_relocations(self, psi, ops):
        backing = NvmDevice(capacity_bytes=2 * KB)  # 32 slots, 31 lines
        wl = WearLevelingNvm(backing, psi=psi)
        latest = {}
        for block, value in ops:
            addr = (block % wl.num_blocks) * 64
            data = bytes([value]) * 64
            wl.write_block(addr, data)
            latest[addr] = data
        for addr, data in latest.items():
            assert wl.read_block(addr) == data

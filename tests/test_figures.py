"""Tests for the shared figure-experiment drivers."""

import pytest

from repro.figures import (
    fig3_rows,
    fig4_rows,
    fig10a_rows,
    fig10b_rows,
    fig10c_rows,
    fig11_gmean_gains,
    fig11_rows,
    fig12_rows,
    export_csv,
    mtbf_rows,
    run_all,
    run_fault_sweep,
    run_perf_campaign,
)

TB = 1 << 40


@pytest.fixture(scope="module")
def tiny_campaign():
    # Large enough that the metadata cache sees some evictions.
    return run_perf_campaign(memory_mb=16, footprint_bytes=4 << 20,
                             num_refs=4_000)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_fault_sweep(fits=(10, 80), trials=2_000, trials_per_k=400)


class TestAnalyticRows:
    def test_fig3_rows(self):
        rows = fig3_rows(error_counts=(1, 4))
        assert len(rows) == 2
        for count, plain, secure, ratio in rows:
            assert secure > plain
            assert ratio == pytest.approx(secure / plain)

    def test_mtbf_rows(self):
        rows = mtbf_rows(fits=(1, 80))
        assert rows[0] == (1, pytest.approx(694.4, abs=0.1))
        assert rows[1][1] < rows[0][1]


class TestCampaignRows:
    def test_campaign_structure(self, tiny_campaign):
        assert len(tiny_campaign) == 15
        for results in tiny_campaign.values():
            assert set(results) == {"baseline", "src", "sac"}

    def test_fig4_shares_sum_to_one(self, tiny_campaign):
        rows = fig4_rows(tiny_campaign)
        assert sum(share for _, _, share in rows) == pytest.approx(1.0)

    def test_fig10a_rows(self, tiny_campaign):
        rows = fig10a_rows(tiny_campaign)
        assert len(rows) == len(tiny_campaign)
        for __, src, sac in rows:
            assert src >= 0 and sac >= 0

    def test_fig10b_clone_accounting(self, tiny_campaign):
        for __, src, sac, clones in fig10b_rows(tiny_campaign):
            assert sac >= src >= 0
            assert clones >= 0

    def test_fig10c_rows(self, tiny_campaign):
        for __, rate, miss in fig10c_rows(tiny_campaign):
            assert rate >= 0
            assert 0 <= miss <= 1


class TestFaultRows:
    def test_fig11_rows_ordered(self, tiny_sweep):
        rows = fig11_rows(tiny_sweep)
        assert [fit for fit, *_ in rows] == [10, 80]
        for __, base, src, sac in rows:
            assert base > src >= sac

    def test_fig11_gmean(self, tiny_sweep):
        src_gain, sac_gain = fig11_gmean_gains(fig11_rows(tiny_sweep))
        assert src_gain > 1e2
        assert sac_gain >= src_gain * 0.5

    def test_fig12_rows(self, tiny_sweep):
        rows = fig12_rows(tiny_sweep[80])
        schemes = [scheme for scheme, *_ in rows]
        assert schemes == ["non-secure", "baseline", "src", "sac"]
        by_scheme = {r[0]: r for r in rows}
        assert by_scheme["baseline"][4] > by_scheme["src"][4]


class TestExport:
    def test_export_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        export_csv(path, ["a", "b"], [(1, 2), (3, 4)])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_run_all_writes_every_figure(self, tmp_path, monkeypatch):
        # Shrink the heavy campaigns for the test.
        import repro.figures as figures

        monkeypatch.setattr(
            figures, "run_perf_campaign",
            lambda **kw: run_perf_campaign(
                memory_mb=16, footprint_bytes=1 << 20, num_refs=400
            ),
        )
        monkeypatch.setattr(
            figures, "run_fault_sweep",
            lambda **kw: run_fault_sweep(
                fits=(10, 80), trials=1_000, trials_per_k=200
            ),
        )
        produced = figures.run_all(tmp_path, quick=True, echo=lambda *a: None)
        expected = {
            "fig03_expected_loss", "fig04_eviction_levels",
            "fig10a_performance", "fig10b_writes", "fig10c_evictions",
            "fig11_udr", "fig12_loss_8tb", "mtbf_calibration",
            "mc_ci_trajectory", "scheme_study",
        }
        written = {p.stem for p in tmp_path.glob("*.csv")}
        assert expected == written
        assert len(produced) == 10
        study_rows = produced["scheme_study"]
        from repro.schemes import scheme_names
        assert {row[0] for row in study_rows} == set(scheme_names())
        # The CI-vs-trials trajectory must tighten monotonically in
        # trials and carry positive half-widths.
        trajectory = produced["mc_trajectory"]
        assert len(trajectory) >= 2
        trials = [row[1] for row in trajectory]
        assert trials == sorted(trials)
        assert all(row[3] > 0 for row in trajectory)

"""Setup shim: enables legacy editable installs in offline environments
(where the `wheel` package needed by PEP 660 builds is unavailable)."""

from setuptools import setup

setup()
